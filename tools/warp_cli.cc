// warp_cli — command-line access to the warp library.
//
//   warp_cli dist <a> <b> [--measure=...] [...]   distance between two series
//   warp_cli search <haystack> <query> [...]      best-match subsequence search
//   warp_cli classify <train> <test> [...]        1-NN classification
//   warp_cli cluster <data> [...]                 hierarchical clustering
//   warp_cli info <data>                          dataset summary
//
// Series files: one value per line (or one whitespace/comma-separated
// line). Dataset files: UCR format, one exemplar per line, class label
// first. Run `warp_cli help` for full flag documentation.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cluster_main.h"
#include "serve_main.h"
#include "warp/common/statistics.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/adtw.h"
#include "warp/core/ddtw.h"
#include "warp/core/distance_matrix.h"
#include "warp/core/dtw.h"
#include "warp/core/elastic.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/core/measure.h"
#include "warp/core/wdtw.h"
#include "warp/mining/hierarchical_clustering.h"
#include "warp/mining/nn_classifier.h"
#include "warp/mining/similarity_search.h"
#include "warp/mining/window_search.h"
#include "warp/obs/histogram.h"
#include "warp/obs/json_writer.h"
#include "warp/obs/trace.h"
#include "warp/common/metrics.h"
#include "warp/serve/net.h"
#include "warp/simd/dispatch.h"
#include "warp/ts/io.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace cli {
namespace {

constexpr char kHelp[] = R"(warp_cli — exact and approximate DTW from the command line

COMMANDS
  dist <a> <b>        Distance between two single-series files.
    --measure=M       any registered measure (default cdtw); run
                      `warp_cli measures` for the list
    --omega=F         ADTW non-diagonal step penalty (default 0.1)
    --epsilon=F       LCSS match tolerance (default 0.1)
    --gap=F           ERP gap reference value (default 0)
    --c=F             MSM split/merge cost (default 1)
    --window=F        Sakoe-Chiba window as a fraction (default 0.05)
    --radius=N        FastDTW radius (default 10)
    --g=F             WDTW steepness (default 0.05)
    --cost=C          squared (default) | absolute
    --znorm           z-normalize both series first
    --path            also print the warping path (exact measures)

  search <haystack> <query>
    --window=F        cDTW window fraction (default 0.05)

  classify <train.tsv> <test.tsv>
    --window=F        window fraction; or
    --auto-window=N   LOOCV search up to N%% of the length
    --max-band=N      cap the band in cells
    --threads=N       worker threads over test queries (default 1 =
                      serial; 0 = all cores / WARP_THREADS). Results are
                      identical at any thread count.

  cluster <data.tsv>
    --measure=M       as for dist (default cdtw)
    --window=F        window fraction (default 0.1)
    --linkage=L       single | complete | average (default)
    --k=N             also print a flat k-cut (default 0 = skip)
    --threads=N       worker threads for the distance-matrix build
                      (default 1; 0 = all cores / WARP_THREADS)

  cluster             Without a dataset file: launch the multi-process
                      serving cluster (supervisor + router; answers are
                      bitwise-identical to `serve --shards=N`). Same
                      flags as warp_cluster: --shards --snapshot-dir
                      --port --threads --cache --max-queue-depth
                      --worker-bin (docs/SERVING.md, "Multi-process
                      cluster")

  info <data.tsv>     Dataset summary (sizes, classes, length stats).

  measures            List every registered measure with a one-line
                      summary (the registry in warp/core/measure.h).
    --json            machine-readable JSON array instead of the table

  serve               Run the loopback query server (docs/SERVING.md).
                      Same flags as warp_serve: --port --threads --shards
                      --cache --bands --data=NAME=PATH
                      --gen=NAME=COUNT,LEN[,SEED] --snapshot-dir=PATH

  query               Talk to a running server.
    --port=N          server port (required; scrape the listening line)
    --op=OP           1nn | knn | range | dist | subsequence | ping |
                      info | stats | load | save_snapshot | load_snapshot |
                      shutdown. Omit --op to pipe raw request lines from
                      stdin (pipelined lines are answered as one server
                      batch).
    --dataset=NAME    target dataset; --query-file=PATH query series
    --measure=M --window=F --band=N --k=N --index=N --threshold=F
    --deadline-ms=F --znorm=BOOL --id=N
    --path=P (for --op=load / save_snapshot / load_snapshot)

GLOBAL FLAGS
  --profile           After the command, print the work-counter report
                      (cells computed, bound calls, cascade outcomes) to
                      stderr. Requires a -DWARP_PROFILE=ON build (the
                      default); see docs/OBSERVABILITY.md.
  --simd=MODE         SIMD kernel dispatch: on | off | auto (default
                      auto = use vector paths when the CPU supports the
                      compiled backend; see docs/SIMD.md). Results are
                      identical in every mode.
)";

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  std::string Flag(const std::string& name,
                   const std::string& fallback) const {
    for (const auto& [key, value] : flags) {
      if (key == name) return value;
    }
    return fallback;
  }
  double FlagDouble(const std::string& name, double fallback) const {
    const std::string v = Flag(name, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }
  long FlagInt(const std::string& name, long fallback) const {
    const std::string v = Flag(name, "");
    return v.empty() ? fallback : std::strtol(v.c_str(), nullptr, 10);
  }
  bool Has(const std::string& name) const {
    for (const auto& [key, value] : flags) {
      if (key == name) return true;
    }
    return false;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        args.flags.emplace_back(arg, "true");
      } else {
        args.flags.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "warp_cli: %s\n", message.c_str());
  std::exit(1);
}

TimeSeries LoadSeriesOrDie(const std::string& path) {
  TimeSeries series;
  std::string error;
  if (!LoadSeriesFile(path, &series, &error)) Fail(error);
  return series;
}

Dataset LoadDatasetOrDie(const std::string& path) {
  Dataset dataset;
  std::string error;
  if (!LoadUcrFile(path, &dataset, &error)) Fail(error);
  return dataset;
}

// --threads: 1 = serial (default), 0 = auto, N = N workers. Negative
// values are treated as auto.
size_t ParseThreads(const Args& args) {
  const long value = args.FlagInt("threads", 1);
  return value < 0 ? 0 : static_cast<size_t>(value);
}

CostKind ParseCost(const Args& args) {
  const std::string cost = args.Flag("cost", "squared");
  if (cost == "squared") return CostKind::kSquared;
  if (cost == "absolute") return CostKind::kAbsolute;
  Fail("unknown --cost: " + cost);
}

int CmdDist(const Args& args) {
  if (args.positional.size() != 2) Fail("dist needs two series files");
  TimeSeries a = LoadSeriesOrDie(args.positional[0]);
  TimeSeries b = LoadSeriesOrDie(args.positional[1]);
  if (args.Has("znorm")) {
    ZNormalizeInPlace(a.mutable_values());
    ZNormalizeInPlace(b.mutable_values());
  }
  const CostKind cost = ParseCost(args);
  const std::string measure = args.Flag("measure", "cdtw");
  const double window = args.FlagDouble("window", 0.05);
  const size_t radius = static_cast<size_t>(args.FlagInt("radius", 10));
  const size_t band = static_cast<size_t>(
      window * static_cast<double>(std::max(a.size(), b.size())) + 0.5);

  // Every distance-only evaluation goes through the measure registry; the
  // explicit band_cells reproduces this command's historical half-up band
  // rounding exactly. Path-printing stays special-cased on the four
  // path-capable measures.
  MeasureParams params;
  params.band_cells = static_cast<long>(band);
  params.cost = cost;
  params.fastdtw_radius = radius;
  params.wdtw_g = args.FlagDouble("g", 0.05);
  params.adtw_omega = args.FlagDouble("omega", 0.1);
  params.lcss_epsilon = args.FlagDouble("epsilon", 0.1);
  params.erp_gap = args.FlagDouble("gap", 0.0);
  params.msm_cost = args.FlagDouble("c", 1.0);

  Stopwatch watch;
  double distance = 0.0;
  DtwResult result;
  bool have_path = false;
  if (args.Has("path") && measure == "cdtw") {
    result = Cdtw(a.view(), b.view(), band, cost);
    distance = result.distance;
    have_path = true;
  } else if (args.Has("path") && measure == "dtw") {
    result = Dtw(a.view(), b.view(), cost);
    distance = result.distance;
    have_path = true;
  } else if (measure == "fastdtw") {
    result = FastDtw(a.view(), b.view(), radius, cost);
    distance = result.distance;
    have_path = args.Has("path");
  } else if (measure == "fastdtw-ref") {
    result = ReferenceFastDtw(a.view(), b.view(), radius, cost);
    distance = result.distance;
    have_path = args.Has("path");
  } else if (IsRegisteredMeasure(measure)) {
    distance = MakeMeasure(measure, params)(a.view(), b.view());
  } else {
    Fail("unknown --measure: " + measure + " (expected one of " +
         RegisteredMeasureNames() + ")");
  }
  const double millis = watch.ElapsedMillis();

  std::printf("%.10g\n", distance);
  std::fprintf(stderr, "# measure=%s n=%zu m=%zu band=%zu time=%.3fms\n",
               measure.c_str(), a.size(), b.size(), band, millis);
  if (have_path) {
    for (const PathPoint& p : result.path.points()) {
      std::printf("%u\t%u\n", p.i, p.j);
    }
  }
  return 0;
}

int CmdSearch(const Args& args) {
  if (args.positional.size() != 2) Fail("search needs haystack and query");
  const TimeSeries haystack = LoadSeriesOrDie(args.positional[0]);
  const TimeSeries query = LoadSeriesOrDie(args.positional[1]);
  const double window = args.FlagDouble("window", 0.05);
  const size_t band = static_cast<size_t>(
      window * static_cast<double>(query.size()) + 0.5);
  SearchStats stats;
  const SubsequenceMatch match = FindBestMatch(
      haystack.view(), query.view(), band, CostKind::kSquared, &stats);
  std::printf("position\t%zu\ndistance\t%.10g\n", match.position,
              match.distance);
  std::fprintf(stderr,
               "# %llu windows, %.2f s; pruned: kim=%llu keogh=%llu "
               "abandoned=%llu full=%llu\n",
               static_cast<unsigned long long>(stats.windows), stats.seconds,
               static_cast<unsigned long long>(stats.pruned_by_kim),
               static_cast<unsigned long long>(stats.pruned_by_keogh),
               static_cast<unsigned long long>(stats.abandoned_dtw),
               static_cast<unsigned long long>(stats.full_dtw));
  return 0;
}

int CmdClassify(const Args& args) {
  if (args.positional.size() != 2) Fail("classify needs train and test");
  const Dataset train = LoadDatasetOrDie(args.positional[0]);
  const Dataset test = LoadDatasetOrDie(args.positional[1]);
  const size_t length = train.UniformLength();
  if (length == 0) Fail("training series must share one length");

  size_t band;
  if (args.Has("auto-window")) {
    const long max_percent = args.FlagInt("auto-window", 10);
    const WindowSearchResult search = FindBestWindowLoocv(
        train, static_cast<size_t>(max_percent) * length / 100,
        std::max<size_t>(1, length / 100));
    band = search.best_band;
    std::fprintf(stderr, "# auto-window: best band %zu (w=%.1f%%), LOOCV "
                 "accuracy %.3f\n",
                 band, search.best_window_percent(length),
                 search.best_accuracy);
  } else {
    band = static_cast<size_t>(args.FlagDouble("window", 0.05) *
                               static_cast<double>(length) + 0.5);
  }
  if (args.Has("max-band")) {
    band = std::min(band, static_cast<size_t>(args.FlagInt("max-band", 0)));
  }

  const AcceleratedNnClassifier classifier(train, band);
  const ClassificationStats stats =
      classifier.Evaluate(test, ParseThreads(args));
  std::printf("accuracy\t%.6f\nerror\t%.6f\ntime_s\t%.3f\nband\t%zu\n",
              stats.accuracy, stats.error_rate, stats.seconds, band);
  return 0;
}

int CmdCluster(const Args& args) {
  if (args.positional.size() != 1) Fail("cluster needs a dataset file");
  const Dataset dataset = LoadDatasetOrDie(args.positional[0]);
  const double window = args.FlagDouble("window", 0.1);
  const std::string measure = args.Flag("measure", "cdtw");
  const size_t radius = static_cast<size_t>(args.FlagInt("radius", 10));

  std::vector<std::vector<double>> series;
  std::vector<std::string> labels;
  for (size_t i = 0; i < dataset.size(); ++i) {
    series.push_back(dataset[i].values());
    labels.push_back(std::to_string(i) + ":" +
                     std::to_string(dataset[i].label()));
  }
  // The registry's fraction mode uses the same llround rule as
  // CdtwDistanceFraction, so banded measures resolve their band per pair.
  if (!IsRegisteredMeasure(measure)) {
    Fail("unknown --measure: " + measure + " (expected one of " +
         RegisteredMeasureNames() + ")");
  }
  MeasureParams params;
  params.window_fraction = window;
  params.fastdtw_radius = radius;
  const SeriesMeasure fn = MakeMeasure(measure, params);

  const DistanceMatrix matrix =
      ComputePairwiseMatrix(series, fn, ParseThreads(args));
  const std::string linkage_name = args.Flag("linkage", "average");
  Linkage linkage = Linkage::kAverage;
  if (linkage_name == "single") linkage = Linkage::kSingle;
  else if (linkage_name == "complete") linkage = Linkage::kComplete;
  else if (linkage_name != "average") Fail("unknown --linkage");

  const Dendrogram dendrogram = AgglomerativeCluster(matrix, linkage);
  std::printf("%s\n", dendrogram.ToNewick(labels).c_str());
  const long k = args.FlagInt("k", 0);
  if (k > 0) {
    const std::vector<int> cut =
        dendrogram.CutIntoClusters(static_cast<size_t>(k));
    for (size_t i = 0; i < cut.size(); ++i) {
      std::printf("%zu\t%d\n", i, cut[i]);
    }
  }
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional.size() != 1) Fail("info needs a dataset file");
  const Dataset dataset = LoadDatasetOrDie(args.positional[0]);
  std::printf("series\t%zu\n", dataset.size());
  std::vector<double> lengths;
  for (const auto& s : dataset.series()) {
    lengths.push_back(static_cast<double>(s.size()));
  }
  const SampleStats stats = ComputeStats(lengths);
  std::printf("length_min\t%.0f\nlength_median\t%.0f\nlength_max\t%.0f\n",
              stats.min, stats.median, stats.max);
  std::printf("uniform_length\t%zu\n", dataset.UniformLength());
  for (const auto& [label, count] : dataset.ClassCounts()) {
    std::printf("class\t%d\t%zu\n", label, count);
  }
  return 0;
}

int CmdMeasures(const Args& args) {
  if (args.Has("json")) {
    obs::JsonWriter writer;
    writer.BeginArray();
    for (const MeasureInfo& info : RegisteredMeasures()) {
      writer.BeginObject()
          .Key("name").String(info.name)
          .Key("exact").Bool(info.exact)
          .Key("summary").String(info.summary)
          .EndObject();
    }
    writer.EndArray();
    std::printf("%s\n", writer.TakeOutput().c_str());
    return 0;
  }
  for (const MeasureInfo& info : RegisteredMeasures()) {
    std::printf("%-12s %-11s %s\n", info.name.c_str(),
                info.exact ? "exact" : "approximate", info.summary.c_str());
  }
  return 0;
}

// Talks to a running warp_serve instance over loopback TCP. Two modes:
// with --op, builds one request line from flags and prints the response;
// without, forwards stdin request lines verbatim (sent as one write, so a
// multi-line file exercises the server's pipeline batching) and prints
// one response line per non-empty request line.
int CmdQuery(const Args& args) {
  const long port = args.FlagInt("port", 0);
  if (port <= 0) Fail("query needs --port=N (scrape warp_serve's listening line)");
  std::string error;
  serve::TcpConn conn =
      serve::ConnectLoopback(static_cast<int>(port), &error);
  if (!conn.valid()) Fail(error);

  if (!args.Has("op")) {
    std::string payload;
    std::string line;
    size_t expected = 0;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) ++expected;
      payload += line;
      payload += '\n';
    }
    if (expected == 0) Fail("no request lines on stdin (or pass --op)");
    if (!conn.WriteAll(payload)) Fail("write to server failed");
    for (size_t i = 0; i < expected; ++i) {
      if (!conn.ReadLine(&line)) Fail("server closed before all responses");
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }

  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(args.FlagInt("id", 1))
      .Key("op").String(args.Flag("op", ""));
  if (args.Has("dataset")) {
    writer.Key("dataset").String(args.Flag("dataset", ""));
  }
  if (args.Has("path")) writer.Key("path").String(args.Flag("path", ""));
  if (args.Has("measure")) {
    writer.Key("measure").String(args.Flag("measure", ""));
  }
  if (args.Has("window")) {
    writer.Key("window").Double(args.FlagDouble("window", 0.0));
  }
  if (args.Has("band")) writer.Key("band").Int(args.FlagInt("band", 0));
  if (args.Has("cost")) writer.Key("cost").String(args.Flag("cost", ""));
  if (args.Has("k")) writer.Key("k").Int(args.FlagInt("k", 1));
  if (args.Has("index")) writer.Key("index").Int(args.FlagInt("index", 0));
  if (args.Has("threshold")) {
    writer.Key("threshold").Double(args.FlagDouble("threshold", 0.0));
  }
  if (args.Has("deadline-ms")) {
    writer.Key("deadline_ms").Double(args.FlagDouble("deadline-ms", 0.0));
  }
  if (args.Has("znorm")) {
    writer.Key("znorm").Bool(args.Flag("znorm", "true") != "false");
  }
  if (args.Has("query-file")) {
    const TimeSeries query = LoadSeriesOrDie(args.Flag("query-file", ""));
    writer.Key("query").BeginArray();
    for (double value : query.values()) writer.Double(value);
    writer.EndArray();
  }
  writer.EndObject();

  std::string request = writer.TakeOutput();
  request += '\n';
  if (!conn.WriteAll(request)) Fail("write to server failed");
  std::string response;
  if (!conn.ReadLine(&response)) Fail("server closed without responding");
  std::printf("%s\n", response.c_str());
  return 0;
}

// Prints every nonzero work counter, every nonempty histogram, and every
// completed trace span accumulated during the command — one stderr block
// so a `2>profile.txt` redirect captures the whole picture.
void PrintProfile(const obs::MetricsSnapshot& delta,
                  const obs::HistogramSnapshot& histograms,
                  const std::vector<obs::SpanRecord>& spans) {
  std::fprintf(stderr, "# --- work counters (WARP_PROFILE) ---\n");
  if (!obs::kProfilingEnabled) {
    std::fprintf(stderr,
                 "# counters disabled: rebuild with -DWARP_PROFILE=ON\n");
    return;
  }
  bool any = false;
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    if (delta.values[i] == 0) continue;
    any = true;
    std::fprintf(stderr, "# %-28s %llu\n",
                 obs::CounterName(static_cast<obs::Counter>(i)),
                 static_cast<unsigned long long>(delta.values[i]));
  }
  if (!any) std::fprintf(stderr, "# (all counters zero)\n");
  for (size_t h = 0; h < obs::kNumHistograms; ++h) {
    const obs::HistogramData& data = histograms.series[h];
    if (data.Empty()) continue;
    std::fprintf(stderr, "# histogram %-24s count=%llu mean=%.1f p50=%llu "
                 "p95=%llu p99=%llu\n",
                 obs::HistogramName(static_cast<obs::Histogram>(h)),
                 static_cast<unsigned long long>(data.count), data.Mean(),
                 static_cast<unsigned long long>(data.Percentile(0.50)),
                 static_cast<unsigned long long>(data.Percentile(0.95)),
                 static_cast<unsigned long long>(data.Percentile(0.99)));
  }
  for (const obs::SpanRecord& span : spans) {
    std::fprintf(stderr, "# span %*s%-24s %.3f ms\n",
                 static_cast<int>(2 * span.depth), "", span.name.c_str(),
                 span.seconds * 1e3);
  }
}

int Main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "help") == 0 ||
      std::strcmp(argv[1], "--help") == 0) {
    std::fputs(kHelp, stdout);
    return argc < 2 ? 1 : 0;
  }
  const Args args = Parse(argc, argv);
  if (args.Has("simd")) {
    simd::SimdMode mode;
    const std::string text = args.Flag("simd", "auto");
    if (!simd::ParseSimdMode(text, &mode)) {
      std::fprintf(stderr,
                   "warp_cli: invalid --simd=%s (expected on, off, or auto)\n",
                   text.c_str());
      return 2;
    }
    simd::SetSimdMode(mode);
  }
  const bool profile = args.Has("profile");
  const obs::MetricsSnapshot before = obs::SnapshotCounters();
  const obs::HistogramSnapshot histograms_before = obs::SnapshotHistograms();
  const std::string command = argv[1];
  int status = -1;
  if (command == "dist") status = CmdDist(args);
  else if (command == "search") status = CmdSearch(args);
  else if (command == "classify") status = CmdClassify(args);
  // `cluster` is dual-mode: with a positional dataset file it is
  // hierarchical clustering; flags-only it launches the multi-process
  // serving cluster (tools/cluster_main.h).
  else if (command == "cluster" && !args.positional.empty())
    status = CmdCluster(args);
  else if (command == "cluster")
    status = tools::ClusterToolMain(args.flags,
                                    tools::SiblingWorkerBinary(argv[0]));
  else if (command == "info") status = CmdInfo(args);
  else if (command == "measures") status = CmdMeasures(args);
  else if (command == "query") status = CmdQuery(args);
  else if (command == "serve") status = tools::ServeToolMain(args.flags);
  else Fail("unknown command: " + command + " (try `warp_cli help`)");
  if (profile) {
    PrintProfile(obs::CountersSince(before),
                 obs::HistogramsSince(histograms_before), obs::DrainSpans());
  }
  return status;
}

}  // namespace
}  // namespace cli
}  // namespace warp

int main(int argc, char** argv) { return warp::cli::Main(argc, argv); }
