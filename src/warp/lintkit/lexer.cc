#include "warp/lintkit/lexer.h"

#include <cctype>
#include <utility>

namespace warp {
namespace lintkit {

namespace {

// Character cursor over the raw file contents. Line splices (backslash
// followed by a newline, optionally \r\n) are erased transparently by
// Advance()/Peek(), exactly as translation phase 2 does, so every token
// matcher above this layer sees logical characters only. Raw string
// bodies bypass the splice handling via RawAdvance() (phase 2 does not
// apply inside raw string literals).
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) { SkipSplices(); }

  bool AtEnd() const { return pos_ >= text_.size(); }

  char Peek(size_t ahead = 0) const {
    // Splices are only guaranteed erased at the current position; for
    // lookahead we re-scan. `ahead` is at most 2 in this lexer.
    size_t p = pos_;
    size_t remaining = ahead;
    while (p < text_.size()) {
      size_t spliced = SpliceLength(p);
      if (spliced > 0) {
        p += spliced;
        continue;
      }
      if (remaining == 0) return text_[p];
      --remaining;
      ++p;
    }
    return '\0';
  }

  char Advance() {
    if (AtEnd()) return '\0';
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    SkipSplices();
    return c;
  }

  // Advances without erasing splices (raw string bodies).
  char RawAdvance() {
    if (AtEnd()) return '\0';
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  size_t line() const { return line_; }
  size_t col() const { return col_; }

 private:
  // Length of the splice sequence at `p` (0 when none).
  size_t SpliceLength(size_t p) const {
    if (text_[p] != '\\') return 0;
    if (p + 1 < text_.size() && text_[p + 1] == '\n') return 2;
    if (p + 2 < text_.size() && text_[p + 1] == '\r' && text_[p + 2] == '\n') {
      return 3;
    }
    return 0;
  }

  void SkipSplices() {
    while (pos_ < text_.size()) {
      const size_t spliced = SpliceLength(pos_);
      if (spliced == 0) return;
      pos_ += spliced;
      ++line_;
      col_ = 1;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Literal prefixes (encoding and/or rawness) that may precede a quote.
bool IsLiteralPrefix(const std::string& ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L" ||
         ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

std::string TrimmedView(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

// Parses the allow-pragma syntax (docs/STATIC_ANALYSIS.md) out of one
// comment's text: the marker, an allow(...) rule list, a reason tail.
void ParsePragmas(std::string_view comment, size_t line, bool alone_on_line,
                  std::vector<AllowPragma>* out) {
  const std::string_view kMarker = "warp-lint:";
  const size_t marker = comment.find(kMarker);
  if (marker == std::string_view::npos) return;

  AllowPragma pragma;
  pragma.line = line;
  pragma.covers_next = alone_on_line;

  std::string_view rest = comment.substr(marker + kMarker.size());
  size_t i = 0;
  while (i < rest.size() &&
         std::isspace(static_cast<unsigned char>(rest[i]))) {
    ++i;
  }
  const std::string_view kAllow = "allow(";
  if (rest.substr(i, kAllow.size()) != kAllow) {
    pragma.malformed = true;
    out->push_back(std::move(pragma));
    return;
  }
  i += kAllow.size();
  const size_t close = rest.find(')', i);
  if (close == std::string_view::npos) {
    pragma.malformed = true;
    out->push_back(std::move(pragma));
    return;
  }
  // Split the rule list on commas.
  std::string_view list = rest.substr(i, close - i);
  while (!list.empty()) {
    const size_t comma = list.find(',');
    const std::string rule = TrimmedView(list.substr(0, comma));
    if (!rule.empty()) pragma.rules.push_back(rule);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  if (pragma.rules.empty()) pragma.malformed = true;

  // Mandatory ": reason" tail. A comment-closing "*/" is not part of it.
  std::string_view tail = rest.substr(close + 1);
  const size_t colon = tail.find(':');
  if (colon != std::string_view::npos) {
    std::string reason = TrimmedView(tail.substr(colon + 1));
    const size_t end_comment = reason.find("*/");
    if (end_comment != std::string::npos) {
      reason = TrimmedView(std::string_view(reason).substr(0, end_comment));
    }
    pragma.reason = std::move(reason);
  }
  out->push_back(std::move(pragma));
}

class Lexer {
 public:
  Lexer(std::string path, std::string_view contents)
      : cursor_(contents) {
    file_.path = std::move(path);
  }

  LexedFile Run() {
    while (!cursor_.AtEnd()) Step();
    return std::move(file_);
  }

 private:
  void Emit(TokenKind kind, std::string text, size_t line, size_t col) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = line;
    token.col = col;
    token.in_directive = in_directive_;
    file_.tokens.push_back(std::move(token));
  }

  void Step() {
    const char c = cursor_.Peek();
    if (c == '\n') {
      cursor_.Advance();
      at_line_start_ = true;
      in_directive_ = false;
      pending_include_ = false;
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cursor_.Advance();
      return;
    }
    if (c == '/' && cursor_.Peek(1) == '/') {
      LexLineComment();
      return;
    }
    if (c == '/' && cursor_.Peek(1) == '*') {
      LexBlockComment();
      return;
    }
    if (c == '#' && at_line_start_) {
      LexDirectiveName();
      return;
    }
    at_line_start_ = false;
    if (pending_include_ && c == '<') {
      LexAngledHeader();
      return;
    }
    if (IsIdentStart(c)) {
      LexIdentifierOrPrefixedLiteral();
      return;
    }
    if (IsDigit(c) || (c == '.' && IsDigit(cursor_.Peek(1)))) {
      LexNumber();
      return;
    }
    if (c == '"') {
      LexString(/*raw=*/false);
      return;
    }
    if (c == '\'') {
      LexCharLiteral();
      return;
    }
    LexPunct();
  }

  void LexLineComment() {
    const size_t line = cursor_.line();
    const bool alone = at_line_start_ || only_comments_on_line_;
    cursor_.Advance();
    cursor_.Advance();
    std::string text;
    while (!cursor_.AtEnd() && cursor_.Peek() != '\n') {
      text.push_back(cursor_.Advance());
    }
    ParsePragmas(text, line, alone, &file_.pragmas);
    only_comments_on_line_ = alone;
  }

  void LexBlockComment() {
    const size_t line = cursor_.line();
    const bool alone = at_line_start_ || only_comments_on_line_;
    cursor_.Advance();
    cursor_.Advance();
    std::string text;
    while (!cursor_.AtEnd()) {
      if (cursor_.Peek() == '*' && cursor_.Peek(1) == '/') {
        cursor_.Advance();
        cursor_.Advance();
        break;
      }
      text.push_back(cursor_.Advance());
    }
    // A block comment that spans lines ending right before code keeps
    // `alone` semantics from its opening line; good enough for pragmas.
    ParsePragmas(text, line, alone, &file_.pragmas);
    only_comments_on_line_ = alone;
  }

  void LexDirectiveName() {
    at_line_start_ = false;
    only_comments_on_line_ = false;
    cursor_.Advance();  // '#'
    while (!cursor_.AtEnd() && (cursor_.Peek() == ' ' || cursor_.Peek() == '\t')) {
      cursor_.Advance();
    }
    const size_t line = cursor_.line();
    const size_t col = cursor_.col();
    std::string name;
    while (!cursor_.AtEnd() && IsIdentChar(cursor_.Peek())) {
      name.push_back(cursor_.Advance());
    }
    in_directive_ = true;
    pending_include_ = (name == "include" || name == "include_next");
    Emit(TokenKind::kDirective, std::move(name), line, col);
  }

  void LexAngledHeader() {
    const size_t line = cursor_.line();
    const size_t col = cursor_.col();
    cursor_.Advance();  // '<'
    std::string target;
    while (!cursor_.AtEnd() && cursor_.Peek() != '>' && cursor_.Peek() != '\n') {
      target.push_back(cursor_.Advance());
    }
    if (cursor_.Peek() == '>') cursor_.Advance();
    file_.includes.push_back({target, /*angled=*/true, line});
    Emit(TokenKind::kHeaderName, std::move(target), line, col);
    pending_include_ = false;
  }

  void LexIdentifierOrPrefixedLiteral() {
    const size_t line = cursor_.line();
    const size_t col = cursor_.col();
    std::string ident;
    while (!cursor_.AtEnd() && IsIdentChar(cursor_.Peek())) {
      ident.push_back(cursor_.Advance());
    }
    only_comments_on_line_ = false;
    if (IsLiteralPrefix(ident)) {
      if (cursor_.Peek() == '"') {
        LexString(/*raw=*/ident.back() == 'R');
        return;
      }
      if (cursor_.Peek() == '\'' && ident != "R" && ident.back() != 'R') {
        LexCharLiteral();
        return;
      }
    }
    Emit(TokenKind::kIdentifier, std::move(ident), line, col);
  }

  void LexNumber() {
    const size_t line = cursor_.line();
    const size_t col = cursor_.col();
    std::string text;
    only_comments_on_line_ = false;
    while (!cursor_.AtEnd()) {
      const char c = cursor_.Peek();
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        text.push_back(cursor_.Advance());
        // Exponent signs: e+, E-, p+, P- continue the pp-number.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (cursor_.Peek() == '+' || cursor_.Peek() == '-')) {
          text.push_back(cursor_.Advance());
        }
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, std::move(text), line, col);
  }

  void LexString(bool raw) {
    const size_t line = cursor_.line();
    const size_t col = cursor_.col();
    cursor_.Advance();  // opening quote
    std::string text;
    only_comments_on_line_ = false;
    if (raw) {
      std::string delim;
      while (!cursor_.AtEnd() && cursor_.Peek() != '(') {
        delim.push_back(cursor_.RawAdvance());
      }
      cursor_.RawAdvance();  // '('
      const std::string close = ")" + delim + "\"";
      while (!cursor_.AtEnd()) {
        text.push_back(cursor_.RawAdvance());
        if (text.size() >= close.size() &&
            text.compare(text.size() - close.size(), close.size(), close) ==
                0) {
          text.resize(text.size() - close.size());
          break;
        }
      }
      Emit(TokenKind::kString, std::move(text), line, col);
      return;
    }
    while (!cursor_.AtEnd()) {
      const char c = cursor_.Peek();
      if (c == '\n') break;  // Unterminated; tolerate.
      cursor_.Advance();
      if (c == '\\' && !cursor_.AtEnd()) {
        text.push_back(c);
        text.push_back(cursor_.Advance());
        continue;
      }
      if (c == '"') break;
      text.push_back(c);
    }
    if (pending_include_) {
      file_.includes.push_back({text, /*angled=*/false, line});
      pending_include_ = false;
    }
    Emit(TokenKind::kString, std::move(text), line, col);
  }

  void LexCharLiteral() {
    const size_t line = cursor_.line();
    const size_t col = cursor_.col();
    cursor_.Advance();  // opening quote
    std::string text;
    only_comments_on_line_ = false;
    while (!cursor_.AtEnd()) {
      const char c = cursor_.Peek();
      if (c == '\n') break;
      cursor_.Advance();
      if (c == '\\' && !cursor_.AtEnd()) {
        text.push_back(c);
        text.push_back(cursor_.Advance());
        continue;
      }
      if (c == '\'') break;
      text.push_back(c);
    }
    Emit(TokenKind::kCharLiteral, std::move(text), line, col);
  }

  void LexPunct() {
    const size_t line = cursor_.line();
    const size_t col = cursor_.col();
    only_comments_on_line_ = false;
    char c = cursor_.Advance();
    std::string text(1, c);
    if (c == ':' && cursor_.Peek() == ':') {
      text.push_back(cursor_.Advance());
    }
    Emit(TokenKind::kPunct, std::move(text), line, col);
  }

  Cursor cursor_;
  LexedFile file_;
  bool at_line_start_ = true;
  // True while the current line has produced only comments so far, so a
  // line comment after a block comment still counts as standing alone.
  bool only_comments_on_line_ = false;
  bool in_directive_ = false;
  bool pending_include_ = false;
};

}  // namespace

LexedFile LexFile(std::string path, std::string_view contents) {
  return Lexer(std::move(path), contents).Run();
}

}  // namespace lintkit
}  // namespace warp
