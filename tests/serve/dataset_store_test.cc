// DatasetStore tests: the precomputed LB index must match what a query
// would compute from scratch, and epoch/snapshot semantics must hold.

#include "warp/serve/dataset_store.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "warp/core/envelope.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace serve {
namespace {

TEST(DatasetStoreTest, RegisterZNormalizesEverySeries) {
  const Dataset raw = gen::RandomWalkDataset(6, 32, 7);
  DatasetStore store;
  const auto stored = store.Register("d", raw, {});
  ASSERT_EQ(stored->data.size(), raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(stored->data[i].values(), ZNormalized(raw[i].values()))
        << "series " << i;
  }
  EXPECT_EQ(stored->uniform_length, 32u);
}

// The index exists so queries skip per-candidate envelope builds; it is
// only sound if it equals ComputeEnvelope on the z-normalized series.
TEST(DatasetStoreTest, EnvelopeIndexMatchesComputeEnvelope) {
  const Dataset raw = gen::RandomWalkDataset(5, 40, 13);
  DatasetStore store;
  const auto stored = store.Register("d", raw, {2, 8});
  ASSERT_EQ(stored->bands, (std::vector<size_t>{2, 8}));
  ASSERT_EQ(stored->envelopes.size(), 2u);
  for (size_t b = 0; b < stored->bands.size(); ++b) {
    ASSERT_EQ(stored->envelopes[b].size(), raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      const Envelope expected =
          ComputeEnvelope(stored->data[i].values(), stored->bands[b]);
      EXPECT_EQ(stored->envelopes[b][i].upper, expected.upper);
      EXPECT_EQ(stored->envelopes[b][i].lower, expected.lower);
    }
  }
}

TEST(DatasetStoreTest, HeadTailCachesMatchEndpoints) {
  const Dataset raw = gen::RandomWalkDataset(4, 16, 3);
  DatasetStore store;
  const auto stored = store.Register("d", raw, {1});
  ASSERT_EQ(stored->head.size(), raw.size());
  ASSERT_EQ(stored->tail.size(), raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(stored->head[i], stored->data[i].values().front());
    EXPECT_EQ(stored->tail[i], stored->data[i].values().back());
  }
}

TEST(DatasetStoreTest, EnvelopesForBandLookup) {
  DatasetStore store;
  const auto stored =
      store.Register("d", gen::RandomWalkDataset(3, 20, 1), {4, 4, 9});
  EXPECT_EQ(stored->bands, (std::vector<size_t>{4, 9}));  // Deduplicated.
  EXPECT_NE(stored->EnvelopesForBand(4), nullptr);
  EXPECT_NE(stored->EnvelopesForBand(9), nullptr);
  EXPECT_EQ(stored->EnvelopesForBand(5), nullptr);
}

TEST(DatasetStoreTest, NonUniformDatasetsSkipTheIndex) {
  Dataset ragged;
  ragged.Add(TimeSeries({1.0, 2.0, 3.0}, 0));
  ragged.Add(TimeSeries({1.0, 2.0}, 1));
  DatasetStore store;
  const auto stored = store.Register("r", ragged, {1});
  EXPECT_EQ(stored->uniform_length, 0u);
  EXPECT_TRUE(stored->envelopes.empty());
  EXPECT_TRUE(stored->bands.empty());
  // Endpoint caches are length-independent and still present.
  EXPECT_EQ(stored->head.size(), 2u);
}

TEST(DatasetStoreTest, EveryRegistrationBumpsTheEpoch) {
  DatasetStore store;
  EXPECT_EQ(store.CurrentEpoch(), 1u);
  const auto first = store.Register("a", gen::RandomWalkDataset(2, 8, 1), {});
  const auto second = store.Register("b", gen::RandomWalkDataset(2, 8, 2), {});
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(second->epoch, 2u);
  // Replacing a name gets a fresh epoch, never a reused one.
  const auto replaced =
      store.Register("a", gen::RandomWalkDataset(2, 8, 3), {});
  EXPECT_EQ(replaced->epoch, 3u);
  EXPECT_EQ(store.CurrentEpoch(), 4u);
  EXPECT_EQ(store.Get("a")->epoch, 3u);
}

TEST(DatasetStoreTest, OutstandingSnapshotsSurviveReplacementAndDrop) {
  DatasetStore store;
  const auto old = store.Register("d", gen::RandomWalkDataset(2, 8, 1), {});
  store.Register("d", gen::RandomWalkDataset(5, 8, 2), {});
  EXPECT_EQ(old->data.size(), 2u);  // The old snapshot is untouched.
  EXPECT_EQ(store.Get("d")->data.size(), 5u);

  const auto current = store.Get("d");
  EXPECT_TRUE(store.Drop("d"));
  EXPECT_FALSE(store.Drop("d"));
  EXPECT_EQ(store.Get("d"), nullptr);
  EXPECT_EQ(current->data.size(), 5u);
}

TEST(DatasetStoreTest, NamesAreSorted) {
  DatasetStore store;
  store.Register("zeta", gen::RandomWalkDataset(1, 4, 1), {});
  store.Register("alpha", gen::RandomWalkDataset(1, 4, 2), {});
  store.Register("mid", gen::RandomWalkDataset(1, 4, 3), {});
  EXPECT_EQ(store.Names(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
  EXPECT_EQ(store.Get("nope"), nullptr);
}

}  // namespace
}  // namespace serve
}  // namespace warp
