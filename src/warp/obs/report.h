// Bench report assembly: one object that accumulates named cases
// (timings + counter deltas + config), renders them as console tables,
// and serializes the whole run as a schema-stable JSON document
// ("warp-bench-v1", documented in docs/OBSERVABILITY.md).
//
// Usage, from a bench main:
//
//   obs::BenchReport report("E1 / Fig. 1", "FastDTW vs cDTW, UWave-like");
//   report.AddConfig("pairs", pairs);
//   report.MeasureCase("cdtw w=100", [&] { ... }, repetitions);
//   ...
//   std::fputs(report.CounterTable().c_str(), stdout);
//   report.Finish(json_path);  // No-op table-side; writes JSON if path set.

#ifndef WARP_OBS_REPORT_H_
#define WARP_OBS_REPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "warp/common/stopwatch.h"
#include "warp/common/metrics.h"
#include "warp/obs/histogram.h"
#include "warp/obs/trace.h"

namespace warp {
namespace obs {

class JsonWriter;

// One measured case: a named timing plus the counter work it did and the
// histogram samples recorded while it ran (serving benches: per-op
// latency and work distributions — empty outside the serve path).
struct BenchCase {
  std::string name;
  TimingSummary timing;
  MetricsSnapshot counters;
  HistogramSnapshot histograms;
};

// Serializes one histogram as the canonical JSON object shared by the
// stats op and warp-bench-v1 case sections: count/sum/mean/p50/p95/p99
// plus sparse per-bucket entries [{"le": <inclusive bound>, "n": ...}].
void WriteHistogramObject(JsonWriter& writer, const HistogramData& data);

class BenchReport {
 public:
  BenchReport(std::string experiment, std::string description);

  // Config entries preserve insertion order in the JSON document.
  void AddConfig(const std::string& key, const std::string& value);
  void AddConfig(const std::string& key, const char* value);
  void AddConfig(const std::string& key, int64_t value);
  void AddConfig(const std::string& key, uint64_t value);
  void AddConfig(const std::string& key, int value);
  void AddConfig(const std::string& key, double value);
  void AddConfig(const std::string& key, bool value);

  // Times `fn` via MeasureRepeated and records the case together with the
  // counter delta across all repetitions (including warmup — counters
  // measure total work performed under measurement).
  TimingSummary MeasureCase(const std::string& name,
                            const std::function<void()>& fn, int repetitions,
                            int warmup = 1);

  // Records an externally measured case (e.g. an all-pairs sweep timed as
  // one aggregate run; pair with SnapshotCounters/CountersSince). The
  // overload with `histograms` also attaches a histogram delta (pair with
  // SnapshotHistograms/HistogramsSince).
  void AddCase(const std::string& name, const TimingSummary& timing,
               const MetricsSnapshot& counters);
  void AddCase(const std::string& name, const TimingSummary& timing,
               const MetricsSnapshot& counters,
               const HistogramSnapshot& histograms);

  const std::vector<BenchCase>& cases() const { return cases_; }

  // Console rendering. CounterTable lists every counter that is nonzero
  // in at least one case, one column per case; TimingTable mirrors the
  // JSON timing block (mean/std/min/med/p95/max); HistogramTable lists
  // every nonempty histogram per case with count/mean/p50/p95/p99 (empty
  // string when no case recorded any histogram samples).
  std::string CounterTable() const;
  std::string TimingTable() const;
  std::string HistogramTable() const;

  // The full JSON document; `spans` (if any) are serialized under "spans".
  std::string ToJson(const std::vector<SpanRecord>& spans = {}) const;

  // Writes ToJson(DrainSpans()) to `path` when non-empty; prints the
  // destination on success, prints the error and exits(1) on failure.
  // With an empty path, drains spans and discards them (so a later
  // report in the same process starts clean).
  void Finish(const std::string& json_path) const;

 private:
  struct ConfigEntry {
    std::string key;
    std::string json_value;  // Pre-serialized JSON scalar.
  };

  std::string experiment_;
  std::string description_;
  std::vector<ConfigEntry> config_;
  std::vector<BenchCase> cases_;
};

}  // namespace obs
}  // namespace warp

#endif  // WARP_OBS_REPORT_H_
