// Music-alignment generator (paper Case B, Section 3.2).
//
// The paper aligns a studio recording of a four-minute song against a live
// performance using chroma-feature energy sampled at 100 Hz (N = 24,000),
// with the live version at most ~2 s ahead or behind (w = 0.83%). This
// module synthesizes that setting: a "song profile" of chord-segment
// energies with note-level texture, plus a performance that is the same
// profile under a small smooth tempo warp and performance noise.

#ifndef WARP_GEN_CHROMA_H_
#define WARP_GEN_CHROMA_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "warp/common/random.h"

namespace warp {
namespace gen {

struct ChromaOptions {
  size_t length = 24000;        // 4 minutes at 100 Hz.
  double max_shift_fraction = 0.0083;  // Paper's 2 s of 240 s.
  double noise_stddev = 0.03;
  uint64_t seed = 11;
};

// The studio "song": piecewise chord segments (2–8 s) with smooth
// transitions and beat-level amplitude texture, z-normalized.
std::vector<double> MakeSongProfile(size_t length, uint64_t seed);

// (studio, live): the live rendition is the song under a smooth monotone
// tempo warp bounded by max_shift_fraction, plus noise. Both z-normalized.
std::pair<std::vector<double>, std::vector<double>> MakePerformancePair(
    const ChromaOptions& options);

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_CHROMA_H_
