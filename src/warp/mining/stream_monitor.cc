#include "warp/mining/stream_monitor.h"

#include <limits>

#include "warp/common/assert.h"
#include "warp/core/lower_bounds.h"
#include "warp/common/metrics.h"

namespace warp {

StreamMonitor::StreamMonitor(std::vector<double> query, size_t band,
                             double threshold, CostKind cost)
    : query_(ZNormalized(query)),
      query_envelope_(ComputeEnvelope(query_, band)),
      band_(band),
      threshold_(threshold),
      cost_(cost),
      ring_(query_.size(), 0.0),
      running_(query_.size()) {
  WARP_CHECK(!query_.empty());
  WARP_CHECK(threshold >= 0.0);
  window_.resize(query_.size());
}

std::optional<StreamMonitor::Event> StreamMonitor::Push(double value) {
  const size_t m = query_.size();
  const bool warm = stats_.samples >= m;  // Ring already full?
  if (warm) running_.Pop(ring_[ring_head_]);
  ring_[ring_head_] = value;
  running_.Push(value);
  ring_head_ = (ring_head_ + 1) % m;
  ++stats_.samples;
  if (stats_.samples < m) return std::nullopt;

  ++stats_.windows_checked;
  WARP_COUNT(obs::Counter::kCascadeCandidates);
  const double mean = running_.mean();
  const double stddev = running_.stddev();
  const double inv = stddev > 1e-12 ? 1.0 / stddev : 0.0;

  // Oldest sample of the window is at ring_head_ (just advanced past the
  // newest), newest at ring_head_ - 1.
  const double first = (ring_[ring_head_] - mean) * inv;
  const double last =
      (ring_[(ring_head_ + m - 1) % m] - mean) * inv;
  const double kim = WithCost(cost_, [&](auto c) {
    return c(query_.front(), first) + c(query_.back(), last);
  });
  if (kim > threshold_) {
    ++stats_.pruned_by_kim;
    WARP_COUNT(obs::Counter::kLbKimKills);
    return std::nullopt;
  }

  // Materialize the normalized window in time order.
  for (size_t k = 0; k < m; ++k) {
    window_[k] = (ring_[(ring_head_ + k) % m] - mean) * inv;
  }
  if (LbKeogh(query_envelope_, window_, cost_, threshold_) > threshold_) {
    ++stats_.pruned_by_keogh;
    WARP_COUNT(obs::Counter::kLbKeoghKills);
    return std::nullopt;
  }

  const double d = CdtwDistanceAbandoning(query_, window_, band_, threshold_,
                                          cost_, &buffer_);
  if (d == std::numeric_limits<double>::infinity()) {
    ++stats_.abandoned_dtw;
    WARP_COUNT(obs::Counter::kCascadeEarlyAbandons);
    return std::nullopt;
  }
  ++stats_.full_dtw;
  WARP_COUNT(obs::Counter::kCascadeFullDtw);
  if (d > threshold_) return std::nullopt;
  ++stats_.events;
  return Event{stats_.samples - 1, d};
}

}  // namespace warp
