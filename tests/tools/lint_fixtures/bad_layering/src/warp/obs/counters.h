#ifndef WARP_OBS_COUNTERS_H_
#define WARP_OBS_COUNTERS_H_

namespace warp {
namespace obs {
void BumpSomething();
}  // namespace obs
}  // namespace warp

#endif  // WARP_OBS_COUNTERS_H_
