#include "warp/cluster/router.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "warp/cluster/supervisor.h"
#include "warp/cluster/worker.h"
#include "warp/common/metrics.h"
#include "warp/common/stopwatch.h"
#include "warp/obs/exposition.h"
#include "warp/obs/histogram.h"
#include "warp/obs/json_writer.h"
#include "warp/obs/report.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/net.h"
#include "warp/serve/protocol.h"
#include "warp/serve/request.h"
#include "warp/serve/wire.h"

namespace warp {
namespace cluster {

namespace {

using serve::ControlOp;
using serve::Neighbor;
using serve::ParsedLine;
using serve::QueryOp;
using serve::ServeRequest;
using serve::ServeResponse;

constexpr int kAcceptPollMs = 100;

// The scan total order, replicated from the engine: ties on distance go
// to the earlier global index. Merging per-shard top-k lists under this
// strict order selects the same k smallest the single process's
// shard-major chunk merge does (a set property — see query_engine.cc).
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

void AddTopK(std::vector<Neighbor>* hits, const Neighbor& n, size_t k) {
  const auto pos =
      std::lower_bound(hits->begin(), hits->end(), n, NeighborLess);
  if (hits->size() == k && pos == hits->end()) return;
  hits->insert(pos, n);
  if (hits->size() > k) hits->pop_back();
}

bool IsScanOp(QueryOp op) {
  return op == QueryOp::k1Nn || op == QueryOp::kKnn || op == QueryOp::kRange;
}

bool StartsWith(const std::string& text, const char* prefix) {
  return text.compare(0, std::char_traits<char>::length(prefix), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// json_name -> enum index maps for merging worker registries by name.
const std::map<std::string, size_t>& CounterIndex() {
  static const std::map<std::string, size_t> index = [] {
    std::map<std::string, size_t> m;
    for (size_t i = 0; i < obs::kNumCounters; ++i) {
      m[obs::CounterName(static_cast<obs::Counter>(i))] = i;
    }
    return m;
  }();
  return index;
}

const std::map<std::string, size_t>& HistogramIndex() {
  static const std::map<std::string, size_t> index = [] {
    std::map<std::string, size_t> m;
    for (size_t i = 0; i < obs::kNumHistograms; ++i) {
      m[obs::HistogramName(static_cast<obs::Histogram>(i))] = i;
    }
    return m;
  }();
  return index;
}

const std::map<std::string, size_t>& GaugeIndex() {
  static const std::map<std::string, size_t> index = [] {
    std::map<std::string, size_t> m;
    for (size_t i = 0; i < obs::kNumGauges; ++i) {
      m[obs::GaugeName(static_cast<obs::Gauge>(i))] = i;
    }
    return m;
  }();
  return index;
}

// Rebuilds one histogram's merged data from the stats-op JSON shape
// ({count, sum, buckets: [{le, n}...]}): the sparse le bounds invert to
// bucket indexes because HistogramBucketBound is injective. Doubles are
// compared against the bound's double image — both sides went through
// the same uint64 -> double rounding, so equality is exact.
void AddHistogramJson(const serve::JsonValue& value, obs::HistogramData* out) {
  out->count += static_cast<uint64_t>(value.NumberOr("count", 0.0));
  out->sum += static_cast<uint64_t>(value.NumberOr("sum", 0.0));
  const serve::JsonValue* buckets = value.Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) return;
  for (const serve::JsonValue& entry : buckets->AsArray()) {
    const double le = entry.NumberOr("le", -1.0);
    const uint64_t n = static_cast<uint64_t>(entry.NumberOr("n", 0.0));
    for (size_t i = 0; i < obs::kHistogramBuckets; ++i) {
      if (static_cast<double>(obs::HistogramBucketBound(i)) == le) {
        out->buckets[i] += n;
        break;
      }
    }
  }
}

// One slow-query record as it crosses the wire; mirrors the fields the
// server's slowlog op emits.
struct SlowEntry {
  int64_t id = 0;
  std::string op;
  std::string dataset;
  std::string measure;
  double engine_us = 0.0;
  double total_us = 0.0;
  uint64_t cells = 0;
  uint64_t scanned = 0;
  uint64_t total = 0;
  bool partial = false;
};

}  // namespace

struct Router::Impl {
  struct Connection {
    serve::TcpConn conn;
    std::thread thread;
  };

  struct Link {
    WorkerClient client;
    uint64_t generation = 0;
  };

  struct DatasetInfo {
    uint64_t epoch = 0;
    uint64_t size = 0;
  };

  // Bookkeeping for one query inside a scatter pass.
  struct QueryState {
    std::vector<size_t> targets;           // Shards scattered to, ascending.
    std::vector<ServeResponse> subs;       // Parallel to `targets`.
    std::vector<bool> have;                // Parallel to `targets`.
    std::vector<size_t> missing;           // Shards with no answer.
    DatasetInfo info;
    bool have_info = false;
  };

  RouterOptions options;
  Supervisor* supervisor;
  serve::TcpListener listener;
  std::atomic<bool> shutdown{false};

  std::mutex conn_mutex;
  std::vector<std::unique_ptr<Connection>> connections;

  // Worker links and the dataset {epoch, size} cache, both guarded by
  // scatter_mutex: the router serializes all worker wire traffic, so a
  // client batch scatters and gathers as one unit.
  std::mutex scatter_mutex;
  std::vector<Link> links;
  std::map<std::string, DatasetInfo> dataset_info;

  Impl(const RouterOptions& opts, Supervisor* sup)
      : options(opts), supervisor(sup) {
    links.resize(supervisor->shards());
  }

  // ---- worker link management (scatter_mutex held) ----

  bool LinkUp(size_t shard) {
    const WorkerStatus status = supervisor->Status(shard);
    Link& link = links[shard];
    if (!status.up) {
      link.client.Disconnect();
      return false;
    }
    if (link.client.connected() && link.generation == status.generation) {
      return true;
    }
    std::string error;
    if (!link.client.Connect(status.port, options.connect_timeout_ms,
                             &error)) {
      return false;
    }
    link.generation = status.generation;
    return true;
  }

  // First live worker that completes `payload` (one line) -> one reply.
  bool FirstWorkerRoundTrip(const std::string& payload, std::string* reply) {
    for (size_t shard = 0; shard < links.size(); ++shard) {
      if (!LinkUp(shard)) continue;
      std::vector<std::string> replies;
      if (!links[shard].client.Send(payload) ||
          !links[shard].client.ReadLines(1, options.gather_timeout_ms,
                                         &replies)) {
        continue;
      }
      *reply = std::move(replies[0]);
      return true;
    }
    return false;
  }

  // ---- dataset info cache (scatter_mutex held) ----

  bool FetchInfo(const std::string& dataset, DatasetInfo* info) {
    obs::JsonWriter writer;
    writer.BeginObject()
        .Key("id").Int(0)
        .Key("op").String("info")
        .Key("dataset").String(dataset)
        .EndObject();
    std::string reply;
    if (!FirstWorkerRoundTrip(writer.TakeOutput() + "\n", &reply)) {
      return false;
    }
    serve::JsonValue root;
    std::string error;
    if (!serve::ParseJson(reply, &root, &error) ||
        !root.BoolOr("ok", false)) {
      dataset_info.erase(dataset);
      return false;
    }
    info->epoch = static_cast<uint64_t>(root.NumberOr("epoch", 0.0));
    info->size = static_cast<uint64_t>(root.NumberOr("size", 0.0));
    dataset_info[dataset] = *info;
    return true;
  }

  bool EnsureInfo(const std::string& dataset, DatasetInfo* info) {
    const auto it = dataset_info.find(dataset);
    if (it != dataset_info.end()) {
      *info = it->second;
      return true;
    }
    return FetchInfo(dataset, info);
  }

  // ---- scatter / gather ----

  // One scatter/gather pass over the queries listed in `idx`. Fills
  // (*merged)[i] for each. When `retry` is non-null, queries whose
  // sub-scans hit an epoch mismatch are appended there (with their cache
  // entry invalidated) instead of being answered; when null, the
  // mismatch error is relayed like any other worker error.
  void ScatterPass(const std::vector<ServeRequest>& requests,
                   const std::vector<size_t>& idx,
                   std::vector<ServeResponse>* merged,
                   std::vector<size_t>* retry) {
    const size_t shards = supervisor->shards();
    std::vector<QueryState> states(idx.size());

    struct WorkerBatch {
      std::string payload;
      // (position in `idx`, position in that query's targets).
      std::vector<std::pair<size_t, size_t>> slots;
    };
    std::vector<WorkerBatch> batches(shards);
    std::vector<bool> up(shards);
    for (size_t shard = 0; shard < shards; ++shard) up[shard] = LinkUp(shard);

    // Build: stamp each sub-scan with (shard, epoch) and append it to its
    // worker's payload. Queries keep batch order within each payload.
    for (size_t q = 0; q < idx.size(); ++q) {
      const ServeRequest& request = requests[idx[q]];
      QueryState& state = states[q];
      state.have_info = EnsureInfo(request.dataset, &state.info);
      if (IsScanOp(request.op)) {
        for (size_t shard = 0; shard < shards; ++shard) {
          state.targets.push_back(shard);
        }
      } else {
        // dist/subsequence: only the owner shard holds the series.
        size_t owner = 0;
        if (state.have_info) {
          owner = serve::ShardRouter::Partition(request.index,
                                                state.info.epoch, shards);
        }
        state.targets.push_back(owner);
      }
      state.subs.resize(state.targets.size());
      state.have.assign(state.targets.size(), false);
      WARP_COUNT(obs::Counter::kClusterScatters);
      for (size_t t = 0; t < state.targets.size(); ++t) {
        const size_t shard = state.targets[t];
        if (!up[shard]) {
          state.missing.push_back(shard);
          continue;
        }
        ServeRequest sub = request;
        sub.shard_filter = static_cast<long>(shard);
        sub.require_epoch = state.have_info ? state.info.epoch : 0;
        batches[shard].payload += serve::FormatRequest(sub);
        batches[shard].payload += '\n';
        batches[shard].slots.push_back({q, t});
      }
    }

    // Write all payloads first so the workers compute in parallel.
    for (size_t shard = 0; shard < shards; ++shard) {
      if (!up[shard] || batches[shard].slots.empty()) continue;
      if (!links[shard].client.Send(batches[shard].payload)) {
        up[shard] = false;
        for (const auto& slot : batches[shard].slots) {
          states[slot.first].missing.push_back(shard);
        }
      }
    }

    // Gather in pinned shard order. A worker that dies mid-stream takes
    // its whole batch down: the survivors' answers still merge, flagged.
    for (size_t shard = 0; shard < shards; ++shard) {
      WorkerBatch& batch = batches[shard];
      if (!up[shard] || batch.slots.empty()) continue;
      std::vector<std::string> lines;
      if (!links[shard].client.ReadLines(batch.slots.size(),
                                         options.gather_timeout_ms, &lines)) {
        up[shard] = false;
        for (const auto& slot : batch.slots) {
          states[slot.first].missing.push_back(shard);
        }
        continue;
      }
      for (size_t j = 0; j < lines.size(); ++j) {
        const auto& [q, t] = batch.slots[j];
        std::string error;
        if (serve::ParseResponseLine(lines[j], &states[q].subs[t], &error)) {
          states[q].have[t] = true;
        } else {
          states[q].missing.push_back(shard);
        }
      }
    }

    // Merge.
    for (size_t q = 0; q < idx.size(); ++q) {
      const size_t i = idx[q];
      if (retry != nullptr && HasEpochMismatch(states[q])) {
        dataset_info.erase(requests[i].dataset);
        retry->push_back(i);
        continue;
      }
      (*merged)[i] = MergeQuery(requests[i], &states[q]);
    }
  }

  static bool HasEpochMismatch(const QueryState& state) {
    for (size_t t = 0; t < state.targets.size(); ++t) {
      if (state.have[t] && !state.subs[t].ok &&
          StartsWith(state.subs[t].error, "epoch mismatch")) {
        return true;
      }
    }
    return false;
  }

  ServeResponse MergeQuery(const ServeRequest& request, QueryState* state) {
    std::sort(state->missing.begin(), state->missing.end());
    state->missing.erase(
        std::unique(state->missing.begin(), state->missing.end()),
        state->missing.end());

    ServeResponse out;
    out.id = request.id;
    out.op = request.op;

    // First worker error in shard order wins — every worker derives the
    // same validation error from the same request, so this matches the
    // single process's (single) error text.
    for (size_t t = 0; t < state->targets.size(); ++t) {
      if (state->have[t] && !state->subs[t].ok) {
        out.ok = false;
        out.error = state->subs[t].error;
        return out;
      }
    }

    if (!IsScanOp(request.op)) {
      // Single-target ops: relay the owner's reply field-for-field. With
      // the owner down there is no partial answer to degrade to, so this
      // fails fast instead of guessing.
      if (!state->missing.empty() || !state->have[0]) {
        out.ok = false;
        out.error = "shard " + std::to_string(state->targets[0]) +
                    " is down; series unavailable";
        WARP_COUNT(obs::Counter::kClusterPartialReplies);
        return out;
      }
      out = state->subs[0];
      out.id = request.id;
      return out;
    }

    out.ok = true;
    bool any_partial = false;
    for (size_t t = 0; t < state->targets.size(); ++t) {
      if (!state->have[t]) continue;
      const ServeResponse& sub = state->subs[t];
      out.scanned += sub.scanned;
      out.total += sub.total;
      any_partial |= sub.partial;
    }
    if (!state->missing.empty() && state->have_info) {
      // Keep "of total candidates" meaning the whole dataset even while
      // some of it is unreachable.
      out.total = state->info.size;
    }
    out.partial =
        any_partial || !state->missing.empty() || out.scanned < out.total;
    out.shards_missing = state->missing;

    if (request.op == QueryOp::kRange) {
      for (size_t t = 0; t < state->targets.size(); ++t) {
        if (!state->have[t]) continue;
        out.neighbors.insert(out.neighbors.end(),
                             state->subs[t].neighbors.begin(),
                             state->subs[t].neighbors.end());
      }
      std::sort(out.neighbors.begin(), out.neighbors.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.index < b.index;
                });
    } else {
      const size_t k = request.op == QueryOp::kKnn ? request.k : 1;
      for (size_t t = 0; t < state->targets.size(); ++t) {
        if (!state->have[t]) continue;
        for (const Neighbor& n : state->subs[t].neighbors) {
          AddTopK(&out.neighbors, n, k);
        }
      }
    }
    if (!state->missing.empty()) {
      WARP_COUNT(obs::Counter::kClusterPartialReplies);
    }
    return out;
  }

  // Executes one client batch of queries; fills one response line per
  // query, in order.
  void ExecuteQueries(const std::vector<ServeRequest>& requests,
                      std::vector<std::string>* out) {
    std::lock_guard<std::mutex> lock(scatter_mutex);
    const Stopwatch gather_watch;
    std::vector<ServeResponse> merged(requests.size());
    std::vector<size_t> all(requests.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    std::vector<size_t> retry;
    ScatterPass(requests, all, &merged, &retry);
    if (!retry.empty()) {
      // The workers advanced past our cached epoch (a load raced this
      // batch). Re-plan against fresh info, once; a second mismatch is
      // relayed as the error it is.
      ScatterPass(requests, retry, &merged, nullptr);
    }
    WARP_HISTOGRAM_RECORD_US(obs::Histogram::kRouterGatherUs,
                             gather_watch.ElapsedMicros());
    out->reserve(requests.size());
    for (const ServeResponse& response : merged) {
      out->push_back(serve::FormatResponse(response));
    }
  }

  // ---- control ops ----

  std::string HandleControl(const ParsedLine& parsed, const std::string& raw);
  std::string HandleInfo(const ParsedLine& parsed, const std::string& raw);
  std::string HandleStats(const ParsedLine& parsed, const std::string& raw);
  std::string HandleMetrics(const ParsedLine& parsed, const std::string& raw);
  std::string HandleSlowlog(const ParsedLine& parsed, const std::string& raw);
  std::string HandleLoadLike(const ParsedLine& parsed, const std::string& raw);
  std::string HandleSaveSnapshot(const ParsedLine& parsed,
                                 const std::string& raw);
  std::string HandleShutdown(const ParsedLine& parsed, const std::string& raw);

  void HandleConnection(Connection* connection);
};

std::string Router::Impl::HandleControl(const ParsedLine& parsed,
                                        const std::string& raw) {
  switch (parsed.control) {
    case ControlOp::kPing: {
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("ping")
          .EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kInfo:
      return HandleInfo(parsed, raw);
    case ControlOp::kStats:
      return HandleStats(parsed, raw);
    case ControlOp::kMetrics:
      return HandleMetrics(parsed, raw);
    case ControlOp::kSlowlog:
      return HandleSlowlog(parsed, raw);
    case ControlOp::kLoad:
    case ControlOp::kLoadSnapshot:
      return HandleLoadLike(parsed, raw);
    case ControlOp::kSaveSnapshot:
      return HandleSaveSnapshot(parsed, raw);
    case ControlOp::kShutdown:
      return HandleShutdown(parsed, raw);
    case ControlOp::kNone:
      break;
  }
  return serve::FormatErrorLine(parsed.id, "internal: unhandled control op");
}

std::string Router::Impl::HandleInfo(const ParsedLine& parsed,
                                     const std::string& raw) {
  std::lock_guard<std::mutex> lock(scatter_mutex);
  std::string reply;
  if (!FirstWorkerRoundTrip(raw + "\n", &reply)) {
    return serve::FormatErrorLine(parsed.id, "no shard workers available");
  }
  serve::JsonValue root;
  std::string error;
  if (!serve::ParseJson(reply, &root, &error)) {
    return serve::FormatErrorLine(parsed.id,
                                  "malformed worker info reply: " + error);
  }
  if (!root.BoolOr("ok", false)) return reply;  // e.g. unknown dataset.

  DatasetInfo info;
  info.epoch = static_cast<uint64_t>(root.NumberOr("epoch", 0.0));
  info.size = static_cast<uint64_t>(root.NumberOr("size", 0.0));
  dataset_info[root.StringOr("dataset", parsed.dataset)] = info;

  // Re-emit with the router's own port and without the worker_shard
  // marker: clients see the cluster as one server.
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(parsed.id)
      .Key("ok").Bool(true)
      .Key("op").String("info")
      .Key("dataset").String(root.StringOr("dataset", parsed.dataset))
      .Key("size").Uint(info.size)
      .Key("length").Uint(static_cast<uint64_t>(root.NumberOr("length", 0.0)))
      .Key("epoch").Uint(info.epoch)
      .Key("shards").Uint(static_cast<uint64_t>(root.NumberOr("shards", 0.0)))
      .Key("port").Int(listener.port());
  writer.Key("bands").BeginArray();
  if (const serve::JsonValue* bands = root.Find("bands")) {
    if (bands->is_array()) {
      for (const serve::JsonValue& band : bands->AsArray()) {
        writer.Uint(static_cast<uint64_t>(band.AsNumber()));
      }
    }
  }
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

std::string Router::Impl::HandleStats(const ParsedLine& parsed,
                                      const std::string& raw) {
  std::lock_guard<std::mutex> lock(scatter_mutex);
  // Seed with the router's own registries (cluster_* counters and the
  // gather histogram live here), then add every live worker's reading.
  // All merges are order-independent sums — counters, gauges, cache
  // tallies, and bucket-wise histogram adds.
  obs::MetricsSnapshot counters = obs::SnapshotCounters();
  obs::HistogramSnapshot histograms = obs::SnapshotHistograms();
  obs::GaugeSnapshot gauges = obs::SnapshotGauges();
  uint64_t cache_size = 0, cache_capacity = 0, cache_hits = 0;
  uint64_t cache_misses = 0, cache_evictions = 0;
  uint64_t slowlog_capacity = 0, slowlog_pending = 0;
  std::vector<std::string> datasets;

  for (size_t shard = 0; shard < links.size(); ++shard) {
    if (!LinkUp(shard)) continue;
    std::vector<std::string> replies;
    if (!links[shard].client.Send(raw + "\n") ||
        !links[shard].client.ReadLines(1, options.gather_timeout_ms,
                                       &replies)) {
      continue;
    }
    serve::JsonValue root;
    std::string error;
    if (!serve::ParseJson(replies[0], &root, &error) ||
        !root.BoolOr("ok", false)) {
      continue;
    }
    if (const serve::JsonValue* c = root.Find("counters")) {
      for (const auto& [name, value] : c->AsObject()) {
        const auto it = CounterIndex().find(name);
        if (it != CounterIndex().end() && value.is_number()) {
          counters.values[it->second] +=
              static_cast<uint64_t>(value.AsNumber());
        }
      }
    }
    if (const serve::JsonValue* c = root.Find("cache")) {
      cache_size += static_cast<uint64_t>(c->NumberOr("size", 0.0));
      cache_capacity += static_cast<uint64_t>(c->NumberOr("capacity", 0.0));
      cache_hits += static_cast<uint64_t>(c->NumberOr("hits", 0.0));
      cache_misses += static_cast<uint64_t>(c->NumberOr("misses", 0.0));
      cache_evictions += static_cast<uint64_t>(c->NumberOr("evictions", 0.0));
    }
    if (const serve::JsonValue* g = root.Find("gauges")) {
      for (const auto& [name, value] : g->AsObject()) {
        const auto it = GaugeIndex().find(name);
        if (it != GaugeIndex().end() && value.is_number()) {
          gauges.values[it->second] +=
              static_cast<int64_t>(value.AsNumber());
        }
      }
    }
    if (const serve::JsonValue* h = root.Find("histograms")) {
      for (const auto& [name, value] : h->AsObject()) {
        const auto it = HistogramIndex().find(name);
        if (it != HistogramIndex().end() && value.is_object()) {
          AddHistogramJson(value, &histograms.series[it->second]);
        }
      }
    }
    if (const serve::JsonValue* s = root.Find("slowlog")) {
      slowlog_capacity += static_cast<uint64_t>(s->NumberOr("capacity", 0.0));
      slowlog_pending += static_cast<uint64_t>(s->NumberOr("pending", 0.0));
    }
    if (const serve::JsonValue* d = root.Find("datasets")) {
      if (d->is_array()) {
        for (const serve::JsonValue& name : d->AsArray()) {
          if (name.is_string()) datasets.push_back(name.AsString());
        }
      }
    }
  }
  std::sort(datasets.begin(), datasets.end());
  datasets.erase(std::unique(datasets.begin(), datasets.end()),
                 datasets.end());

  // Same document shape and key order as a single-process server's
  // stats response (server.cc), so dashboards need no cluster mode.
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(parsed.id)
      .Key("ok").Bool(true)
      .Key("op").String("stats")
      .Key("profiling").Bool(obs::kProfilingEnabled)
      .Key("counters").BeginObject();
  using obs::Counter;
  for (Counter counter : {Counter::kServeRequests, Counter::kServeBatches,
                          Counter::kServeBatchedQueries,
                          Counter::kServeDeadlineExceeded,
                          Counter::kServeShardScans,
                          Counter::kServeSnapshotSaves,
                          Counter::kServeSnapshotLoads,
                          Counter::kServeShed,
                          Counter::kClusterScatters,
                          Counter::kClusterWorkerRestarts,
                          Counter::kClusterPartialReplies}) {
    writer.Key(obs::CounterName(counter)).Uint(counters.Get(counter));
  }
  writer.EndObject()
      .Key("shards").BeginObject()
      .Key("count").Uint(supervisor->shards())
      .EndObject()
      .Key("cache").BeginObject()
      .Key("size").Uint(cache_size)
      .Key("capacity").Uint(cache_capacity)
      .Key("hits").Uint(cache_hits)
      .Key("misses").Uint(cache_misses)
      .Key("evictions").Uint(cache_evictions)
      .EndObject()
      .Key("gauges").BeginObject();
  for (size_t g = 0; g < obs::kNumGauges; ++g) {
    const obs::Gauge gauge = static_cast<obs::Gauge>(g);
    writer.Key(obs::GaugeName(gauge)).Int(gauges.Get(gauge));
  }
  writer.EndObject().Key("histograms").BeginObject();
  for (size_t h = 0; h < obs::kNumHistograms; ++h) {
    const obs::Histogram histogram = static_cast<obs::Histogram>(h);
    const obs::HistogramData& data = histograms.Get(histogram);
    if (data.Empty()) continue;
    writer.Key(obs::HistogramName(histogram));
    obs::WriteHistogramObject(writer, data);
  }
  writer.EndObject()
      .Key("slowlog").BeginObject()
      .Key("capacity").Uint(slowlog_capacity)
      .Key("pending").Uint(slowlog_pending)
      .EndObject()
      .Key("datasets").BeginArray();
  for (const std::string& name : datasets) writer.String(name);
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

std::string Router::Impl::HandleMetrics(const ParsedLine& parsed,
                                        const std::string& raw) {
  std::lock_guard<std::mutex> lock(scatter_mutex);
  obs::MetricsSnapshot counters = obs::SnapshotCounters();
  obs::HistogramSnapshot histograms = obs::SnapshotHistograms();
  obs::GaugeSnapshot gauges = obs::SnapshotGauges();
  std::vector<obs::ExpositionExtra> extras;
  std::map<std::string, size_t> extra_index;

  const auto add_extra = [&](const std::string& name, bool is_counter,
                             int64_t value) {
    const auto it = extra_index.find(name);
    if (it != extra_index.end()) {
      extras[it->second].value += value;
      return;
    }
    extra_index[name] = extras.size();
    extras.push_back({name, is_counter, value});
  };

  for (size_t shard = 0; shard < links.size(); ++shard) {
    if (!LinkUp(shard)) continue;
    std::vector<std::string> replies;
    if (!links[shard].client.Send(raw + "\n") ||
        !links[shard].client.ReadLines(1, options.gather_timeout_ms,
                                       &replies)) {
      continue;
    }
    serve::JsonValue root;
    std::string error;
    if (!serve::ParseJson(replies[0], &root, &error) ||
        !root.BoolOr("ok", false)) {
      continue;
    }
    // Walk the warp-metrics-v1 text line by line. Histogram buckets are
    // cumulative and ascending, so per-bucket counts fall out of
    // consecutive differences; the le bound (2^i - 1, parsed exactly as
    // uint64) inverts to its bucket index via HistogramBucketIndex.
    const std::string body = root.StringOr("body", "");
    std::array<uint64_t, obs::kNumHistograms> prev_cum{};
    size_t pos = 0;
    while (pos < body.size()) {
      size_t end = body.find('\n', pos);
      if (end == std::string::npos) end = body.size();
      const std::string line = body.substr(pos, end - pos);
      pos = end + 1;
      if (line.empty() || line[0] == '#') continue;
      const size_t space = line.rfind(' ');
      if (space == std::string::npos) continue;
      std::string name = line.substr(0, space);
      const std::string value_str = line.substr(space + 1);
      if (!StartsWith(name, "warp_")) continue;
      name.erase(0, 5);

      const size_t brace = name.find("_bucket{le=\"");
      if (brace != std::string::npos) {
        const std::string base = name.substr(0, brace);
        const size_t open = brace + 12;
        const size_t close = name.find('"', open);
        if (close == std::string::npos) continue;
        const std::string bound_str = name.substr(open, close - open);
        const auto it = HistogramIndex().find(base);
        if (it == HistogramIndex().end()) continue;
        if (bound_str == "+Inf") continue;  // Redundant with _count.
        const uint64_t bound = std::strtoull(bound_str.c_str(), nullptr, 10);
        const uint64_t cum = std::strtoull(value_str.c_str(), nullptr, 10);
        const size_t bucket = obs::HistogramBucketIndex(bound);
        histograms.series[it->second].buckets[bucket] +=
            cum - prev_cum[it->second];
        prev_cum[it->second] = cum;
        continue;
      }
      if (EndsWith(name, "_total")) {
        const std::string base = name.substr(0, name.size() - 6);
        const auto it = CounterIndex().find(base);
        if (it != CounterIndex().end()) {
          counters.values[it->second] +=
              std::strtoull(value_str.c_str(), nullptr, 10);
        } else {
          add_extra(base, true,
                    static_cast<int64_t>(
                        std::strtoll(value_str.c_str(), nullptr, 10)));
        }
        continue;
      }
      if (const auto it = GaugeIndex().find(name); it != GaugeIndex().end()) {
        gauges.values[it->second] +=
            std::strtoll(value_str.c_str(), nullptr, 10);
        continue;
      }
      if (EndsWith(name, "_sum")) {
        const auto it = HistogramIndex().find(name.substr(0, name.size() - 4));
        if (it != HistogramIndex().end()) {
          histograms.series[it->second].sum +=
              std::strtoull(value_str.c_str(), nullptr, 10);
          continue;
        }
      }
      if (EndsWith(name, "_count")) {
        const auto it = HistogramIndex().find(name.substr(0, name.size() - 6));
        if (it != HistogramIndex().end()) {
          histograms.series[it->second].count +=
              std::strtoull(value_str.c_str(), nullptr, 10);
          continue;
        }
      }
      add_extra(name, false,
                static_cast<int64_t>(
                    std::strtoll(value_str.c_str(), nullptr, 10)));
    }
  }

  const std::string body =
      obs::RenderMetricsText(counters, histograms, gauges, extras);
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(parsed.id)
      .Key("ok").Bool(true)
      .Key("op").String("metrics")
      .Key("format").String("warp-metrics-v1")
      .Key("body").String(body)
      .EndObject();
  return writer.TakeOutput();
}

std::string Router::Impl::HandleSlowlog(const ParsedLine& parsed,
                                        const std::string& raw) {
  std::lock_guard<std::mutex> lock(scatter_mutex);
  uint64_t capacity = 0;
  std::vector<SlowEntry> entries;
  for (size_t shard = 0; shard < links.size(); ++shard) {
    if (!LinkUp(shard)) continue;
    std::vector<std::string> replies;
    if (!links[shard].client.Send(raw + "\n") ||
        !links[shard].client.ReadLines(1, options.gather_timeout_ms,
                                       &replies)) {
      continue;
    }
    serve::JsonValue root;
    std::string error;
    if (!serve::ParseJson(replies[0], &root, &error) ||
        !root.BoolOr("ok", false)) {
      continue;
    }
    capacity += static_cast<uint64_t>(root.NumberOr("capacity", 0.0));
    const serve::JsonValue* list = root.Find("entries");
    if (list == nullptr || !list->is_array()) continue;
    for (const serve::JsonValue& e : list->AsArray()) {
      SlowEntry entry;
      entry.id = static_cast<int64_t>(e.NumberOr("id", 0.0));
      entry.op = e.StringOr("op", "");
      entry.dataset = e.StringOr("dataset", "");
      entry.measure = e.StringOr("measure", "");
      entry.engine_us = e.NumberOr("engine_us", 0.0);
      entry.total_us = e.NumberOr("total_us", 0.0);
      entry.cells = static_cast<uint64_t>(e.NumberOr("cells", 0.0));
      entry.scanned = static_cast<uint64_t>(e.NumberOr("scanned", 0.0));
      entry.total = static_cast<uint64_t>(e.NumberOr("total", 0.0));
      entry.partial = e.BoolOr("partial", false);
      entries.push_back(std::move(entry));
    }
  }
  // Same order the single server drains in: slowest engine time first.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const SlowEntry& a, const SlowEntry& b) {
                     return a.engine_us > b.engine_us;
                   });
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(parsed.id)
      .Key("ok").Bool(true)
      .Key("op").String("slowlog")
      .Key("capacity").Uint(capacity)
      .Key("entries").BeginArray();
  for (const SlowEntry& entry : entries) {
    writer.BeginObject()
        .Key("id").Int(entry.id)
        .Key("op").String(entry.op)
        .Key("dataset").String(entry.dataset)
        .Key("measure").String(entry.measure)
        .Key("engine_us").Double(entry.engine_us)
        .Key("total_us").Double(entry.total_us)
        .Key("cells").Uint(entry.cells)
        .Key("scanned").Uint(entry.scanned)
        .Key("total").Uint(entry.total)
        .Key("partial").Bool(entry.partial)
        .EndObject();
  }
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

std::string Router::Impl::HandleLoadLike(const ParsedLine& parsed,
                                         const std::string& raw) {
  const char* op_name =
      parsed.control == ControlOp::kLoad ? "load" : "load_snapshot";
  std::lock_guard<std::mutex> lock(scatter_mutex);
  // Loads change the epoch sequence, which every worker must share: a
  // worker that misses one would refuse every stamped scan afterwards.
  // Refuse up front rather than let the cluster diverge.
  for (size_t shard = 0; shard < links.size(); ++shard) {
    if (!LinkUp(shard)) {
      return serve::FormatErrorLine(
          parsed.id, std::string(op_name) +
                         " requires every shard worker up; shard " +
                         std::to_string(shard) + " is down");
    }
  }
  for (size_t shard = 0; shard < links.size(); ++shard) {
    if (!links[shard].client.Send(raw + "\n")) {
      return serve::FormatErrorLine(
          parsed.id, std::string(op_name) + ": shard " +
                         std::to_string(shard) + " worker failed");
    }
  }
  std::vector<std::string> replies(links.size());
  for (size_t shard = 0; shard < links.size(); ++shard) {
    std::vector<std::string> reply;
    if (!links[shard].client.ReadLines(1, options.gather_timeout_ms,
                                       &reply)) {
      return serve::FormatErrorLine(
          parsed.id,
          std::string(op_name) + ": shard " + std::to_string(shard) +
              " worker failed mid-load; cluster epochs may have diverged");
    }
    replies[shard] = std::move(reply[0]);
  }
  // Every worker executed the identical registration against the same
  // store state, so the replies must match byte-for-byte; a divergence
  // means the cluster is no longer in lockstep.
  for (size_t shard = 1; shard < replies.size(); ++shard) {
    if (replies[shard] != replies[0]) {
      return serve::FormatErrorLine(
          parsed.id, std::string(op_name) +
                         ": shard workers disagree; cluster epochs diverged");
    }
  }
  serve::JsonValue root;
  std::string error;
  if (serve::ParseJson(replies[0], &root, &error) &&
      root.BoolOr("ok", false)) {
    DatasetInfo info;
    info.epoch = static_cast<uint64_t>(root.NumberOr("epoch", 0.0));
    info.size = static_cast<uint64_t>(root.NumberOr("size", 0.0));
    const std::string name = root.StringOr("dataset", "");
    if (!name.empty()) dataset_info[name] = info;
  }
  return replies[0];
}

std::string Router::Impl::HandleSaveSnapshot(const ParsedLine& parsed,
                                             const std::string& raw) {
  std::lock_guard<std::mutex> lock(scatter_mutex);
  std::string reply;
  if (!FirstWorkerRoundTrip(raw + "\n", &reply)) {
    return serve::FormatErrorLine(parsed.id, "no shard workers available");
  }
  return reply;
}

std::string Router::Impl::HandleShutdown(const ParsedLine& parsed,
                                         const std::string& raw) {
  // Stop resurrecting first: the workers' clean exits below are not
  // failures. Their shutdown acks are read (best effort) so the send is
  // not lost to a closing socket.
  supervisor->DisableRestarts();
  std::lock_guard<std::mutex> lock(scatter_mutex);
  for (size_t shard = 0; shard < links.size(); ++shard) {
    if (!LinkUp(shard)) continue;
    std::vector<std::string> replies;
    if (links[shard].client.Send(raw + "\n")) {
      links[shard].client.ReadLines(1, options.gather_timeout_ms, &replies);
    }
    links[shard].client.Disconnect();
  }
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(parsed.id)
      .Key("ok").Bool(true)
      .Key("op").String("shutdown")
      .EndObject();
  return writer.TakeOutput();
}

void Router::Impl::HandleConnection(Connection* connection) {
  WARP_GAUGE_ADD(obs::Gauge::kServeOpenConnections, 1);
  std::string first;
  while (!shutdown.load(std::memory_order_relaxed) &&
         connection->conn.ReadLine(&first)) {
    std::vector<std::string> lines;
    lines.push_back(std::move(first));
    while (connection->conn.HasBufferedLine()) {
      std::string more;
      if (!connection->conn.ReadLine(&more)) break;
      lines.push_back(std::move(more));
    }

    // Same in-order semantics as the single-process server: runs of
    // consecutive queries scatter as one batch; a control op flushes the
    // pending batch first.
    std::vector<std::string> out(lines.size());
    std::vector<ServeRequest> queries;
    std::vector<size_t> query_slot;
    const auto flush_queries = [&] {
      if (queries.empty()) return;
      std::vector<std::string> responses;
      ExecuteQueries(queries, &responses);
      for (size_t j = 0; j < responses.size(); ++j) {
        out[query_slot[j]] = std::move(responses[j]);
      }
      queries.clear();
      query_slot.clear();
    };
    bool want_shutdown = false;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].empty()) continue;
      ParsedLine parsed;
      std::string error;
      if (!serve::ParseRequestLine(lines[i], &parsed, &error)) {
        out[i] = serve::FormatErrorLine(parsed.id, error);
      } else if (parsed.control == ControlOp::kNone) {
        queries.push_back(std::move(parsed.request));
        query_slot.push_back(i);
      } else {
        flush_queries();
        out[i] = HandleControl(parsed, lines[i]);
        if (parsed.control == ControlOp::kShutdown) want_shutdown = true;
      }
    }
    flush_queries();

    std::string payload;
    for (const std::string& response : out) {
      if (response.empty()) continue;
      payload += response;
      payload += '\n';
    }
    if (!payload.empty() && !connection->conn.WriteAll(payload)) break;
    if (want_shutdown) {
      shutdown.store(true, std::memory_order_relaxed);
      break;
    }
  }
  connection->conn.ShutdownBoth();
  WARP_GAUGE_ADD(obs::Gauge::kServeOpenConnections, -1);
}

Router::Router(const RouterOptions& options, Supervisor* supervisor)
    : impl_(std::make_unique<Impl>(options, supervisor)) {}

Router::~Router() {
  RequestShutdown();
  std::lock_guard<std::mutex> lock(impl_->conn_mutex);
  for (std::unique_ptr<Impl::Connection>& connection : impl_->connections) {
    connection->conn.ShutdownBoth();
    if (connection->thread.joinable()) connection->thread.join();
  }
}

bool Router::Start(std::string* error) {
  return impl_->listener.Listen(static_cast<uint16_t>(impl_->options.port),
                                error);
}

int Router::port() const { return impl_->listener.port(); }

void Router::Serve() {
  while (!impl_->shutdown.load(std::memory_order_relaxed)) {
    bool timed_out = false;
    serve::TcpConn conn =
        impl_->listener.AcceptWithTimeout(kAcceptPollMs, &timed_out);
    if (!conn.valid()) {
      if (timed_out) continue;
      break;
    }
    auto connection = std::make_unique<Impl::Connection>();
    connection->conn = std::move(conn);
    Impl::Connection* raw = connection.get();
    connection->thread =
        std::thread([this, raw] { impl_->HandleConnection(raw); });
    std::lock_guard<std::mutex> lock(impl_->conn_mutex);
    impl_->connections.push_back(std::move(connection));
  }

  impl_->listener.Close();
  std::lock_guard<std::mutex> lock(impl_->conn_mutex);
  for (std::unique_ptr<Impl::Connection>& connection : impl_->connections) {
    connection->conn.ShutdownBoth();
    if (connection->thread.joinable()) connection->thread.join();
  }
  impl_->connections.clear();
}

void Router::RequestShutdown() {
  impl_->shutdown.store(true, std::memory_order_relaxed);
}

int RunRouter(Router* router) {
  std::string error;
  if (!router->Start(&error)) {
    std::fprintf(stderr, "warp_cluster: %s\n", error.c_str());
    return 1;
  }
  std::printf("warp_cluster listening on 127.0.0.1:%d\n", router->port());
  std::printf("ready port=%d\n", router->port());
  std::fflush(stdout);
  router->Serve();
  return 0;
}

}  // namespace cluster
}  // namespace warp
