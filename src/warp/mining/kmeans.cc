#include "warp/mining/kmeans.h"

#include <limits>
#include <optional>

#include "warp/common/assert.h"
#include "warp/common/parallel.h"
#include "warp/common/random.h"
#include "warp/core/dtw.h"
#include "warp/mining/dba.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

size_t EffectiveBand(const KMeansOptions& options, size_t length) {
  return options.band == 0 ? length : options.band;
}

// k-means++-style seeding: first centroid uniform, each next centroid a
// member whose distance to its nearest chosen centroid is maximal among a
// small random sample (cheap and deterministic).
std::vector<std::vector<double>> SeedCentroids(
    const std::vector<std::vector<double>>& series,
    const KMeansOptions& options, Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.push_back(series[rng.UniformInt(series.size())]);
  DtwWorkspace buffer;
  while (centroids.size() < options.k) {
    size_t best_index = 0;
    double best_distance = -1.0;
    // Sample up to 16 candidates; pick the one farthest from its nearest
    // existing centroid.
    const size_t samples = std::min<size_t>(16, series.size());
    for (size_t s = 0; s < samples; ++s) {
      const size_t index = rng.UniformInt(series.size());
      double nearest = kInf;
      for (const auto& centroid : centroids) {
        nearest = std::min(
            nearest,
            CdtwDistance(centroid, series[index],
                         EffectiveBand(options, centroid.size()),
                         options.cost, &buffer));
      }
      if (nearest > best_distance) {
        best_distance = nearest;
        best_index = index;
      }
    }
    centroids.push_back(series[best_index]);
  }
  return centroids;
}

}  // namespace

KMeansResult DtwKMeans(const std::vector<std::vector<double>>& series,
                       const KMeansOptions& options) {
  WARP_CHECK(!series.empty());
  WARP_CHECK(options.k >= 1 && options.k <= series.size());
  for (const auto& s : series) WARP_CHECK(!s.empty());

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedCentroids(series, options, rng);
  result.assignment.assign(series.size(), -1);

  const size_t n = series.size();
  const size_t threads = ResolveThreadCount(options.threads);
  std::optional<ThreadPool> pool;
  if (threads > 1 && n > 1) pool.emplace(threads);
  ThreadPool* pool_ptr = pool ? &*pool : nullptr;
  PerThread<DtwWorkspace> buffers(pool_ptr);
  constexpr size_t kAssignGrain = 4;

  std::vector<int> best_cluster(n);
  std::vector<double> best_distance(n);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step: each series' nearest centroid lands in its own
    // slot; the inertia sum below runs in series order on this thread, so
    // the result is bitwise-identical at any thread count.
    ParallelFor(pool_ptr, 0, n, kAssignGrain,
                [&](size_t chunk_begin, size_t chunk_end, size_t worker) {
                  DtwWorkspace& buffer = buffers[worker];
                  for (size_t i = chunk_begin; i < chunk_end; ++i) {
                    best_cluster[i] = 0;
                    best_distance[i] = kInf;
                    for (size_t c = 0; c < result.centroids.size(); ++c) {
                      const double d = CdtwDistance(
                          result.centroids[c], series[i],
                          EffectiveBand(options, result.centroids[c].size()),
                          options.cost, &buffer);
                      if (d < best_distance[i]) {
                        best_distance[i] = d;
                        best_cluster[i] = static_cast<int>(c);
                      }
                    }
                  }
                });
    bool changed = false;
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (result.assignment[i] != best_cluster[i]) {
        result.assignment[i] = best_cluster[i];
        changed = true;
      }
      result.inertia += best_distance[i];
    }
    ++result.iterations_run;
    if (!changed) {
      result.converged = true;
      return result;
    }

    // Update step: DBA over each cluster's members; an emptied cluster is
    // re-seeded with a random series. All RNG draws happen here, in
    // cluster order, before the (parallel) DBA averaging, keeping the
    // draw sequence independent of scheduling.
    std::vector<std::vector<std::vector<double>>> members(
        result.centroids.size());
    for (size_t i = 0; i < n; ++i) {
      members[static_cast<size_t>(result.assignment[i])].push_back(series[i]);
    }
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      if (members[c].empty()) {
        result.centroids[c] = series[rng.UniformInt(n)];
      }
    }
    ParallelFor(pool_ptr, 0, result.centroids.size(), /*grain=*/1,
                [&](size_t chunk_begin, size_t chunk_end, size_t /*worker*/) {
                  for (size_t c = chunk_begin; c < chunk_end; ++c) {
                    if (members[c].empty()) continue;
                    DbaOptions dba_options;
                    dba_options.iterations = options.dba_iterations;
                    dba_options.band = options.band;
                    dba_options.cost = options.cost;
                    result.centroids[c] =
                        DtwBarycenterAverage(members[c], dba_options)
                            .barycenter;
                  }
                });
  }
  return result;
}

}  // namespace warp
