// Experiment E2 — paper Fig. 2 (the Case-A-dominance argument).
//
// Histograms over the 128 UCR-2018 datasets of (a) the optimal warping
// window w for 1-NN classification (found by brute-force LOOCV) and (b)
// the series length. The paper's reading: most series are shorter than
// 1,000 points and the best w is rarely above 10% — i.e., at least 99% of
// DTW use in the literature is Case A, where cDTW beats FastDTW outright.
// Regenerated from the bundled archive metadata snapshot.
//
// Flags: --bins-w (11), --bins-len (15), --json=<path>.

#include <algorithm>
#include <cstdio>
#include <string>

#include "harness/bench_flags.h"
#include "warp/common/statistics.h"
#include "warp/common/stopwatch.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"
#include "warp/ucr/ucr_metadata.h"

namespace warp {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int bins_w = static_cast<int>(flags.GetInt("bins-w", 11));
  const int bins_len = static_cast<int>(flags.GetInt("bins-len", 15));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "E2 / Fig. 2",
      "UCR-2018 archive: optimal-window and length distributions");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("bins_w", bins_w);
  report.AddConfig("bins_len", bins_len);

  PrintBanner("E2 / Fig. 2",
              "UCR-2018 archive: distribution of optimal warping window w "
              "and of series length (128 datasets)");

  const obs::MetricsSnapshot analysis_start = obs::SnapshotCounters();
  Stopwatch analysis_watch;
  const std::vector<double> windows = ucr::BestWindowPercents();
  const std::vector<double> lengths = ucr::SeriesLengths();

  Histogram window_hist(0.0, 22.0, bins_w);
  window_hist.AddAll(windows);
  std::printf("(a) optimal w (%% of N) for 1-NN cDTW\n%s\n",
              window_hist.Render().c_str());

  const double max_length =
      *std::max_element(lengths.begin(), lengths.end()) + 1.0;
  Histogram length_hist(0.0, max_length, bins_len);
  length_hist.AddAll(lengths);
  std::printf("(b) series length\n%s\n", length_hist.Render().c_str());

  // Table-1 census: which quadrant each archive dataset falls into.
  const auto census = ucr::CaseCensus();
  std::printf("Table-1 quadrant census of the archive:\n");
  for (size_t c = 0; c < census.size(); ++c) {
    std::printf("  case %s: %zu datasets (%.0f%%)\n",
                ucr::CaseName(static_cast<ucr::WarpingCase>(c)), census[c],
                100.0 * static_cast<double>(census[c]) / 128.0);
  }
  std::printf("\n");

  const SampleStats w_stats = ComputeStats(windows);
  const SampleStats len_stats = ComputeStats(lengths);
  size_t w_le10 = 0;
  for (double w : windows) {
    if (w <= 10.0) ++w_le10;
  }
  size_t len_lt1000 = 0;
  for (double length : lengths) {
    if (length < 1000.0) ++len_lt1000;
  }
  std::printf(
      "Summary:\n"
      "  optimal w: median %.0f%%, mean %.1f%%, max %.0f%%; %zu/128 (%.0f%%)"
      " are <= 10%%\n"
      "  length:    median %.0f, mean %.0f, max %.0f; %zu/128 (%.0f%%) are "
      "< 1,000\n"
      "Paper's reading: \"the best value for w is rarely above 10%%\" and "
      "\"majority ... less than 1,000 datapoints\" -> %s\n",
      w_stats.median, w_stats.mean, w_stats.max, w_le10,
      100.0 * static_cast<double>(w_le10) / 128.0, len_stats.median,
      len_stats.mean, len_stats.max, len_lt1000,
      100.0 * static_cast<double>(len_lt1000) / 128.0,
      (w_le10 > 96 && len_lt1000 > 64) ? "reproduced" : "NOT reproduced");
  report.AddCase("archive_analysis",
                 SummarizeSamples({analysis_watch.ElapsedSeconds()}),
                 obs::CountersSince(analysis_start));
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
