#!/usr/bin/env bash
# Builds everything, runs the full test suite and every experiment
# harness, and records the outputs the repository's EXPERIMENTS.md is
# based on. Usage:  scripts/run_all.sh [build_dir]
set -u

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -G Ninja || exit 1
cmake --build "$BUILD_DIR" || exit 1

ctest --test-dir "$BUILD_DIR" 2>&1 | tee test_output.txt

{
  for b in "$BUILD_DIR"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "########## $b"
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "Wrote test_output.txt and bench_output.txt"
