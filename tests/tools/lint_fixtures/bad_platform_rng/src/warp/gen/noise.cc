namespace warp {
int NoiseSeed() {
  std::mt19937 rng(7);
  (void)rng;
  return rand();
}
}  // namespace warp
