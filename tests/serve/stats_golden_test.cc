// Golden tests for the observability surface of the serve path: the
// stats / metrics / slowlog control ops and the per-request trace echo.
//
// Determinism discipline: wall-clock values (stage timings, engine
// times) are schema-checked only; everything else — key sets, counter
// and cache deltas, slowlog membership, gauge settle points, the
// trace-stripped response bytes — is pinned exactly. The trace-strip
// tests are the no-perturbation guarantee in testable form: a response
// with tracing on is byte-identical to one with tracing off once the
// trace object is removed, cold and from the cache.

#include "warp/serve/server.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "warp/common/metrics.h"
#include "warp/gen/random_walk.h"
#include "warp/obs/histogram.h"
#include "warp/obs/json_writer.h"
#include "warp/serve/net.h"
#include "warp/serve/wire.h"

namespace warp {
namespace serve {
namespace {

constexpr size_t kSeries = 20;
constexpr size_t kLength = 32;

// A running in-process server plus one connected client, raw-line level
// so byte-identity checks are possible.
class LiveServer {
 public:
  explicit LiveServer(size_t threads, size_t slowlog_capacity = 8) {
    ServerOptions options;
    options.threads = threads;
    options.cache_capacity = 64;
    options.slowlog_capacity = slowlog_capacity;
    options.band_fractions = {0.1};
    server_ = std::make_unique<Server>(std::move(options));
    server_->RegisterDataset("d", gen::RandomWalkDataset(kSeries, kLength, 3));
    std::string error;
    EXPECT_TRUE(server_->Start(&error)) << error;
    serve_thread_ = std::thread([this] { server_->Serve(); });
    conn_ = ConnectLoopback(server_->port(), &error);
    EXPECT_TRUE(conn_.valid()) << error;
  }

  ~LiveServer() {
    server_->RequestShutdown();
    serve_thread_.join();
  }

  // Sends `lines` as one pipelined write; returns the raw response lines.
  std::vector<std::string> RawRoundTrip(const std::vector<std::string>& lines) {
    std::string payload;
    for (const std::string& line : lines) payload += line + "\n";
    EXPECT_TRUE(conn_.WriteAll(payload));
    std::vector<std::string> responses;
    for (size_t i = 0; i < lines.size(); ++i) {
      std::string line;
      if (!conn_.ReadLine(&line)) {
        ADD_FAILURE() << "connection closed after " << i << " responses";
        break;
      }
      responses.push_back(std::move(line));
    }
    return responses;
  }

  std::vector<JsonValue> RoundTrip(const std::vector<std::string>& lines) {
    std::vector<JsonValue> parsed;
    for (const std::string& line : RawRoundTrip(lines)) {
      JsonValue value;
      std::string error;
      EXPECT_TRUE(ParseJson(line, &value, &error)) << error << ": " << line;
      parsed.push_back(std::move(value));
    }
    return parsed;
  }

 private:
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
  TcpConn conn_;
};

std::string OneNnLine(int64_t id, size_t seed, bool trace = false) {
  const std::vector<double> query =
      gen::RandomWalkDataset(1, kLength, static_cast<uint64_t>(seed))[0]
          .values();
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(id)
      .Key("op").String("1nn")
      .Key("dataset").String("d");
  if (trace) writer.Key("trace").Bool(true);
  writer.Key("query").BeginArray();
  for (double v : query) writer.Double(v);
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

// Removes the `,"trace":{...}` member from a raw response line. The
// trace object is flat (scalar members only) and emitted last, so the
// first closing brace after its opening ends it.
std::string StripTrace(const std::string& line) {
  const size_t at = line.find(",\"trace\":{");
  if (at == std::string::npos) return line;
  const size_t end = line.find('}', at);
  EXPECT_NE(end, std::string::npos);
  return line.substr(0, at) + line.substr(end + 1);
}

// Known activity: two distinct computed queries, then a duplicate on its
// own round trip so it hits the result cache (pipelined into the first
// batch it would be computed alongside the original instead). Every
// pinned expectation below derives from this: 2 misses, 1 hit, 2
// slowlog entries.
void RunKnownActivity(LiveServer& live) {
  std::vector<JsonValue> responses = live.RoundTrip({
      OneNnLine(1, 101),
      OneNnLine(2, 202),
  });
  ASSERT_EQ(responses.size(), 2u);
  for (const JsonValue& response : responses) {
    ASSERT_TRUE(response.BoolOr("ok", false))
        << response.StringOr("error", "");
  }
  responses = live.RoundTrip({OneNnLine(1, 101)});  // Cache hit.
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].BoolOr("ok", false));
}

TEST(StatsGoldenTest, StatsSchemaAndDeterministicFieldsArePinned) {
  LiveServer live(2);
  RunKnownActivity(live);
  const std::vector<JsonValue> responses =
      live.RoundTrip({R"({"id": 10, "op": "stats"})"});
  ASSERT_EQ(responses.size(), 1u);
  const JsonValue& stats = responses[0];
  EXPECT_EQ(stats.NumberOr("id", -1), 10.0);
  ASSERT_TRUE(stats.BoolOr("ok", false));
  EXPECT_EQ(stats.StringOr("op", ""), "stats");
  EXPECT_EQ(stats.BoolOr("profiling", !obs::kProfilingEnabled),
            obs::kProfilingEnabled);

  // Counters: exactly the engine/shard/snapshot/admission/cluster
  // counters the op emits (the cluster trio reads zero on a plain
  // server but stays in the schema so router-merged stats keep the
  // same shape). The serve_cache_* registry counters must NOT appear —
  // the per-instance cache object below is the single source of truth
  // for cache behavior in this op.
  const JsonValue* counters = stats.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->AsObject().size(), 11u);
  for (const char* key : {"serve_requests", "serve_batches",
                          "serve_batched_queries",
                          "serve_deadline_exceeded", "serve_shard_scans",
                          "serve_snapshot_saves", "serve_snapshot_loads",
                          "serve_shed", "cluster_scatters",
                          "cluster_worker_restarts",
                          "cluster_partial_replies"}) {
    EXPECT_NE(counters->Find(key), nullptr) << key;
  }
  EXPECT_EQ(counters->NumberOr("serve_shed", -1), 0.0);
  EXPECT_EQ(counters->NumberOr("cluster_scatters", -1), 0.0);
  EXPECT_EQ(counters->Find("serve_cache_hits"), nullptr);
  EXPECT_EQ(counters->Find("serve_cache_misses"), nullptr);
  EXPECT_EQ(counters->Find("serve_cache_evictions"), nullptr);

  // Shards: this server runs the default single-shard store.
  const JsonValue* shards = stats.Find("shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->NumberOr("count", -1), 1.0);

  // Cache: per-instance, so exact values are deterministic.
  const JsonValue* cache = stats.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->NumberOr("size", -1), 2.0);
  EXPECT_EQ(cache->NumberOr("capacity", -1), 64.0);
  EXPECT_EQ(cache->NumberOr("hits", -1), 1.0);
  EXPECT_EQ(cache->NumberOr("misses", -1), 2.0);
  EXPECT_EQ(cache->NumberOr("evictions", -1), 0.0);

  // Gauges: settled values. The only open connection is this test's.
  const JsonValue* gauges = stats.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->AsObject().size(), obs::kNumGauges);
  EXPECT_EQ(gauges->NumberOr("serve_queue_depth", -1), 0.0);
  EXPECT_EQ(gauges->NumberOr("serve_inflight_batch", -1), 0.0);
  EXPECT_EQ(gauges->NumberOr("serve_open_connections", -1),
            obs::kProfilingEnabled ? 1.0 : 0.0);

  // Histograms: process-cumulative, so counts are schema-checked (>= the
  // activity just run), not pinned.
  const JsonValue* histograms = stats.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  if (obs::kProfilingEnabled) {
    const JsonValue* latency = histograms->Find("serve_latency_1nn_us");
    ASSERT_NE(latency, nullptr);
    EXPECT_GE(latency->NumberOr("count", 0), 3.0);
    for (const char* key : {"count", "sum", "mean", "p50", "p95", "p99",
                            "buckets"}) {
      EXPECT_NE(latency->Find(key), nullptr) << key;
    }
    const JsonValue* cells = histograms->Find("serve_cells_per_query");
    ASSERT_NE(cells, nullptr);
    EXPECT_GE(cells->NumberOr("count", 0), 2.0);  // Hits record no cells.
  } else {
    EXPECT_TRUE(histograms->AsObject().empty());
  }

  // Slowlog: per-instance. The two computed queries are pending; the
  // cache hit is not.
  const JsonValue* slowlog = stats.Find("slowlog");
  ASSERT_NE(slowlog, nullptr);
  EXPECT_EQ(slowlog->NumberOr("capacity", -1), 8.0);
  EXPECT_EQ(slowlog->NumberOr("pending", -1), 2.0);

  const JsonValue* datasets = stats.Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->AsArray().size(), 1u);
  EXPECT_EQ(datasets->AsArray()[0].AsString(), "d");
}

TEST(StatsGoldenTest, MetricsOpEmitsWellFormedExposition) {
  LiveServer live(1);
  RunKnownActivity(live);
  const std::vector<JsonValue> responses =
      live.RoundTrip({R"({"id": 11, "op": "metrics"})"});
  ASSERT_EQ(responses.size(), 1u);
  const JsonValue& metrics = responses[0];
  ASSERT_TRUE(metrics.BoolOr("ok", false));
  EXPECT_EQ(metrics.StringOr("op", ""), "metrics");
  EXPECT_EQ(metrics.StringOr("format", ""), "warp-metrics-v1");

  const std::string body = metrics.StringOr("body", "");
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.rfind("# warp-metrics-v1\n", 0), 0u);
  // Counter, gauge, and histogram families all present with TYPE headers.
  EXPECT_NE(body.find("# TYPE warp_serve_requests counter"),
            std::string::npos);
  EXPECT_NE(body.find("warp_serve_requests_total "), std::string::npos);
  EXPECT_NE(body.find("# TYPE warp_serve_open_connections gauge"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE warp_serve_latency_1nn_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("warp_serve_latency_1nn_us_bucket{le=\"+Inf\"} "),
            std::string::npos);
  EXPECT_NE(body.find("warp_serve_latency_1nn_us_count "), std::string::npos);
  // Per-instance extras: this server's cache saw exactly 1 hit / 2
  // misses, and its slowlog holds the 2 computed queries.
  EXPECT_NE(body.find("warp_serve_result_cache_hits_total 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("warp_serve_result_cache_misses_total 2\n"),
            std::string::npos);
  EXPECT_NE(body.find("warp_serve_slowlog_pending 2\n"), std::string::npos);
}

TEST(StatsGoldenTest, SlowlogOpDrainsSortedByEngineTime) {
  LiveServer live(1);
  RunKnownActivity(live);
  const std::vector<JsonValue> responses = live.RoundTrip({
      R"({"id": 12, "op": "slowlog"})",
      R"({"id": 13, "op": "slowlog"})",
      R"({"id": 14, "op": "stats"})",
  });
  ASSERT_EQ(responses.size(), 3u);

  const JsonValue& drained = responses[0];
  ASSERT_TRUE(drained.BoolOr("ok", false));
  EXPECT_EQ(drained.StringOr("op", ""), "slowlog");
  EXPECT_EQ(drained.NumberOr("capacity", -1), 8.0);
  const JsonValue* entries = drained.Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->AsArray().size(), 2u);  // The computed pair, no hit.
  double previous_engine_us = -1.0;
  for (size_t i = 0; i < entries->AsArray().size(); ++i) {
    const JsonValue& entry = entries->AsArray()[i];
    EXPECT_EQ(entry.StringOr("op", ""), "1nn");
    EXPECT_EQ(entry.StringOr("dataset", ""), "d");
    EXPECT_EQ(entry.StringOr("measure", ""), "cdtw");
    EXPECT_GT(entry.NumberOr("engine_us", -1), 0.0);
    EXPECT_GE(entry.NumberOr("total_us", -1),
              entry.NumberOr("engine_us", -1));
    EXPECT_EQ(entry.NumberOr("total", 0), static_cast<double>(kSeries));
    if (obs::kProfilingEnabled) {
      EXPECT_GT(entry.NumberOr("cells", 0), 0.0);
    }
    if (i > 0) {
      EXPECT_LE(entry.NumberOr("engine_us", 0), previous_engine_us);
    }
    previous_engine_us = entry.NumberOr("engine_us", 0);
  }

  // A drain empties the log; a pipelined stats confirms it.
  EXPECT_TRUE(responses[1].Find("entries")->AsArray().empty());
  EXPECT_EQ(responses[2].Find("slowlog")->NumberOr("pending", -1), 0.0);
}

TEST(StatsGoldenTest, TraceEchoFollowsTheContract) {
  LiveServer live(1);
  // Separate round trips so the repeat is a genuine cache hit.
  std::vector<JsonValue> responses =
      live.RoundTrip({OneNnLine(1, 303, /*trace=*/true)});
  ASSERT_EQ(responses.size(), 1u);

  const JsonValue* cold = responses[0].Find("trace");
  ASSERT_NE(cold, nullptr);
  EXPECT_FALSE(cold->BoolOr("cached", true));
  for (const char* key : {"parse_us", "cache_us", "queue_us", "engine_us",
                          "merge_us", "serialize_us", "cells"}) {
    ASSERT_NE(cold->Find(key), nullptr) << key;
    EXPECT_GE(cold->NumberOr(key, -1), 0.0) << key;
  }
  EXPECT_GT(cold->NumberOr("engine_us", 0), 0.0);
  if (obs::kProfilingEnabled) {
    EXPECT_GT(cold->NumberOr("cells", 0), 0.0);
  } else {
    EXPECT_EQ(cold->NumberOr("cells", -1), 0.0);
  }

  responses = live.RoundTrip({OneNnLine(2, 303, /*trace=*/true)});
  ASSERT_EQ(responses.size(), 1u);
  const JsonValue* hit = responses[0].Find("trace");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->BoolOr("cached", false));
  // A hit replays no stale timings: the cached trace was stripped at
  // insert, so engine time and cells are zero.
  EXPECT_EQ(hit->NumberOr("engine_us", -1), 0.0);
  EXPECT_EQ(hit->NumberOr("cells", -1), 0.0);

  // No trace key unless the request asked for one.
  responses = live.RoundTrip({OneNnLine(3, 303, /*trace=*/false)});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].Find("trace"), nullptr);
}

// The no-perturbation guarantee, wire-level: tracing changes the bytes
// of a response only by appending the trace object. Cold and cached,
// stripping it yields byte-identical lines to untraced requests.
TEST(StatsGoldenTest, TracedResponsesMatchUntracedOnceStripped) {
  LiveServer live(1);

  // Cold untraced, then the same request traced (a cache hit).
  const std::vector<std::string> first = live.RawRoundTrip({
      OneNnLine(1, 404, /*trace=*/false),
  });
  const std::vector<std::string> second = live.RawRoundTrip({
      OneNnLine(1, 404, /*trace=*/true),
  });
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(second[0], first[0]);  // The trace really was appended...
  EXPECT_EQ(StripTrace(second[0]), first[0]);  // ...and is the only delta.

  // Cold traced, then the same request untraced (a hit on the traced
  // insert): the stored answer must carry no trace residue.
  const std::vector<std::string> third = live.RawRoundTrip({
      OneNnLine(2, 505, /*trace=*/true),
  });
  const std::vector<std::string> fourth = live.RawRoundTrip({
      OneNnLine(2, 505, /*trace=*/false),
  });
  ASSERT_EQ(third.size(), 1u);
  ASSERT_EQ(fourth.size(), 1u);
  EXPECT_EQ(StripTrace(third[0]), fourth[0]);
  EXPECT_EQ(fourth[0].find("\"trace\""), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace warp
