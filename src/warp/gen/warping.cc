#include "warp/gen/warping.h"

#include <algorithm>
#include <cmath>

#include "warp/common/assert.h"

namespace warp {
namespace gen {

std::vector<double> MakeSmoothMonotoneWarp(size_t n, double max_warp_fraction,
                                           Rng& rng, int num_knots) {
  WARP_CHECK(n >= 2);
  WARP_CHECK(max_warp_fraction >= 0.0 && max_warp_fraction < 1.0);
  WARP_CHECK(num_knots >= 2);

  const double max_dev = max_warp_fraction * static_cast<double>(n);

  // Perturb interior knots of the identity map, then clamp each knot
  // between its neighbors to preserve monotonicity.
  const int k = num_knots;
  std::vector<double> knot_x(static_cast<size_t>(k));
  std::vector<double> knot_y(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    knot_x[static_cast<size_t>(i)] = static_cast<double>(n - 1) *
                                     static_cast<double>(i) /
                                     static_cast<double>(k - 1);
    knot_y[static_cast<size_t>(i)] = knot_x[static_cast<size_t>(i)];
  }
  for (int i = 1; i + 1 < k; ++i) {
    knot_y[static_cast<size_t>(i)] += rng.Uniform(-max_dev, max_dev);
  }
  // Monotone repair: sweep forward enforcing a non-decreasing sequence
  // within the valid range.
  for (int i = 1; i < k; ++i) {
    knot_y[static_cast<size_t>(i)] =
        std::clamp(knot_y[static_cast<size_t>(i)],
                   knot_y[static_cast<size_t>(i - 1)],
                   static_cast<double>(n - 1));
  }

  // Piecewise-linear interpolation of the knots, then a final clamp to the
  // advertised deviation bound (the monotone repair can only have moved
  // knots toward the identity, but the interpolated midpoints are clamped
  // for safety).
  std::vector<double> map(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double pos = x / static_cast<double>(n - 1) *
                       static_cast<double>(k - 1);
    size_t seg = std::min(static_cast<size_t>(pos),
                          static_cast<size_t>(k - 2));
    const double frac = pos - static_cast<double>(seg);
    double y = knot_y[seg] * (1.0 - frac) + knot_y[seg + 1] * frac;
    y = std::clamp(y, x - max_dev, x + max_dev);
    y = std::clamp(y, 0.0, static_cast<double>(n - 1));
    map[i] = y;
  }
  // The pointwise deviation clamp can locally break monotonicity; one
  // forward pass restores it without re-violating the bound.
  for (size_t i = 1; i < n; ++i) map[i] = std::max(map[i], map[i - 1]);
  map[0] = 0.0;
  map[n - 1] = static_cast<double>(n - 1);
  return map;
}

std::vector<double> ApplyWarpMap(std::span<const double> values,
                                 std::span<const double> warp_map) {
  WARP_CHECK(!values.empty());
  const double last = static_cast<double>(values.size() - 1);
  std::vector<double> out(warp_map.size());
  for (size_t i = 0; i < warp_map.size(); ++i) {
    const double pos = warp_map[i];
    WARP_CHECK_MSG(pos >= 0.0 && pos <= last,
                   "warp map position out of range");
    if (values.size() == 1) {
      out[i] = values[0];
      continue;
    }
    const size_t base = std::min(static_cast<size_t>(pos), values.size() - 2);
    const double frac = pos - static_cast<double>(base);
    out[i] = values[base] * (1.0 - frac) + values[base + 1] * frac;
  }
  return out;
}

std::vector<double> ApplyRandomWarp(std::span<const double> values,
                                    double max_warp_fraction, Rng& rng) {
  const std::vector<double> map =
      MakeSmoothMonotoneWarp(values.size(), max_warp_fraction, rng);
  return ApplyWarpMap(values, map);
}

}  // namespace gen
}  // namespace warp
