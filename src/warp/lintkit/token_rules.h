// The seven per-file (token-level) conventions, ported from the grep
// pipelines that scripts/lint.sh enforced before PR 7.
//
// Each rule inspects one lexed file at a time; because it sees tokens,
// not raw lines, a banned name inside a comment or string literal never
// fires, and a mid-line trailing comment cannot mask a real violation —
// the two standing false-positive/false-negative classes of the grep
// versions. Cross-file invariants live in project_rules.h.

#ifndef WARP_LINTKIT_TOKEN_RULES_H_
#define WARP_LINTKIT_TOKEN_RULES_H_

#include <vector>

#include "warp/lintkit/diagnostics.h"
#include "warp/lintkit/lexer.h"

namespace warp {
namespace lintkit {

struct TokenRule {
  const char* id;
  const char* summary;
  void (*run)(const LexedFile& file, std::vector<Finding>* findings);
};

// All token rules, in canonical order. Rule ids are the names used by
// --disable= and by allow() pragmas (docs/STATIC_ANALYSIS.md).
const std::vector<TokenRule>& TokenRules();

}  // namespace lintkit
}  // namespace warp

#endif  // WARP_LINTKIT_TOKEN_RULES_H_
