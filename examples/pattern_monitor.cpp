// Real-time pattern spotting and offline anomaly mining.
//
// The paper's footnote-3 workload: Schneider et al. asked how FastDTW
// could be "sped up ... to real-time capability" for gesture spotting;
// exact cDTW had been doing that for a decade. This example
//   1. streams a noisy signal with occasional embedded gestures through
//      StreamMonitor and reports detections and the cascade's cost,
//   2. then mines the same recording offline for its top motif (most
//      repeated shape) and top discord (most anomalous shape).
//
// Build & run:  ./build/examples/pattern_monitor

#include <cmath>
#include <cstdio>
#include <vector>

#include "warp/common/random.h"
#include "warp/common/stopwatch.h"
#include "warp/gen/warping.h"
#include "warp/mining/anomaly.h"
#include "warp/mining/stream_monitor.h"

int main() {
  // The "gesture" to spot: one period of a chirped sine.
  const size_t m = 80;
  std::vector<double> pattern(m);
  for (size_t t = 0; t < m; ++t) {
    const double u = static_cast<double>(t) / static_cast<double>(m);
    pattern[t] = std::sin(2.0 * M_PI * (1.0 + u) * u * 3.0);
  }

  // A 100k-sample stream: drifting noise plus five warped occurrences.
  warp::Rng rng(2021);
  const size_t stream_len = 100000;
  std::vector<double> stream(stream_len);
  double drift = 0.0;
  for (size_t t = 0; t < stream_len; ++t) {
    drift += rng.Gaussian(0.0, 0.01);
    stream[t] = drift + rng.Gaussian(0.0, 0.05);
  }
  std::vector<size_t> planted;
  for (size_t k = 0; k < 5; ++k) {
    const size_t at = 10000 + k * 18000;
    const std::vector<double> occurrence =
        warp::gen::ApplyRandomWarp(pattern, 0.05, rng);
    for (size_t i = 0; i < m; ++i) {
      stream[at + i] = 2.0 * occurrence[i] + stream[at + i];
    }
    planted.push_back(at);
  }

  // --- 1: streaming detection ---------------------------------------------
  warp::StreamMonitor monitor(pattern, /*band=*/6, /*threshold=*/8.0);
  warp::Stopwatch watch;
  std::vector<uint64_t> detections;
  for (double v : stream) {
    const auto event = monitor.Push(v);
    if (event.has_value()) {
      // Report only the first trigger of a burst.
      if (detections.empty() ||
          event->end_time > detections.back() + m) {
        detections.push_back(event->end_time);
      }
    }
  }
  const double seconds = watch.ElapsedSeconds();
  const auto& stats = monitor.stats();

  std::printf("streamed %zu samples in %.2f s (%.2f Msamples/s)\n",
              stream_len, seconds,
              static_cast<double>(stream_len) / seconds / 1e6);
  std::printf("detections at:");
  for (uint64_t t : detections) std::printf(" %llu",
                                            static_cast<unsigned long long>(t));
  std::printf("\nplanted ends at:");
  for (size_t at : planted) std::printf(" %zu", at + m - 1);
  std::printf("\ncascade: %llu windows -> %.1f%% LB_Kim, %.1f%% LB_Keogh, "
              "%.2f%% reached DTW\n\n",
              static_cast<unsigned long long>(stats.windows_checked),
              100.0 * static_cast<double>(stats.pruned_by_kim) /
                  static_cast<double>(stats.windows_checked),
              100.0 * static_cast<double>(stats.pruned_by_keogh) /
                  static_cast<double>(stats.windows_checked),
              100.0 *
                  static_cast<double>(stats.full_dtw + stats.abandoned_dtw) /
                  static_cast<double>(stats.windows_checked));

  // --- 2: offline mining ----------------------------------------------------
  // Mine a slice around the first two occurrences (strided for speed).
  const std::span<const double> slice =
      std::span<const double>(stream).subspan(5000, 30000);
  warp::Stopwatch mine_watch;
  const warp::Motif motif =
      warp::FindTopMotif(slice, m, /*band=*/6, warp::CostKind::kSquared,
                         /*stride=*/4);
  const warp::Discord discord =
      warp::FindTopDiscord(slice, m, /*band=*/6, warp::CostKind::kSquared,
                           /*stride=*/4);
  std::printf("offline mining of a 30k slice took %.1f s\n",
              mine_watch.ElapsedSeconds());
  std::printf("top motif: positions %zu and %zu (distance %.3f) — the two "
              "planted gestures\n",
              motif.position_a + 5000, motif.position_b + 5000,
              motif.distance);
  std::printf("top discord: position %zu (NN distance %.3f)\n",
              discord.position + 5000, discord.nn_distance);
  return 0;
}
