#pragma once

namespace warp {
inline int Once() { return 1; }
}  // namespace warp
