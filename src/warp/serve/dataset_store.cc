#include "warp/serve/dataset_store.h"

#include <algorithm>
#include <utility>

#include "warp/common/assert.h"

namespace warp {
namespace serve {

size_t ShardRouter::Partition(size_t index, uint64_t epoch,
                              size_t shard_count) {
  if (shard_count <= 1) return 0;
  // SplitMix64 finalizer over (index, epoch). This exact mix is part of
  // the snapshot compatibility contract — see the header comment.
  uint64_t x = static_cast<uint64_t>(index) +
               0x9E3779B97F4A7C15ull * (epoch + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<size_t>(x % shard_count);
}

const TimeSeries& StoredDataset::SeriesAt(size_t i) const {
  WARP_CHECK_MSG(i < locate.size(), "series index out of range");
  const SeriesRef ref = locate[i];
  return shards[ref.shard].data[ref.local];
}

size_t StoredDataset::BandSlot(size_t band) const {
  for (size_t i = 0; i < bands.size(); ++i) {
    if (bands[i] == band) return i;
  }
  return kNoBand;
}

DatasetIndex BuildDatasetIndex(Dataset dataset, std::vector<size_t> bands) {
  WARP_CHECK_MSG(!dataset.empty(), "cannot register an empty dataset");
  DatasetIndex index;
  dataset.ZNormalizeAll();
  index.uniform_length = dataset.UniformLength();
  index.data = std::move(dataset);

  const size_t count = index.data.size();
  index.head.reserve(count);
  index.tail.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const TimeSeries& s = index.data[i];
    WARP_CHECK_MSG(!s.empty(), "cannot index an empty series");
    index.head.push_back(s[0]);
    index.tail.push_back(s[s.size() - 1]);
  }

  std::sort(bands.begin(), bands.end());
  bands.erase(std::unique(bands.begin(), bands.end()), bands.end());
  if (index.uniform_length > 0) {
    for (const size_t band : bands) {
      std::vector<Envelope> per_series;
      per_series.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        per_series.push_back(ComputeEnvelope(index.data[i].view(), band));
      }
      index.bands.push_back(band);
      index.envelopes.push_back(std::move(per_series));
    }
  }
  return index;
}

namespace {

// Partitions a built index across `shard_count` shards under `epoch`.
// Pure data movement: every series (and its envelopes / endpoint cache
// entries) is moved, never recomputed, so the sharded layout is a
// bit-exact re-arrangement of the logical one.
std::shared_ptr<const StoredDataset> PartitionIndex(const std::string& name,
                                                    DatasetIndex index,
                                                    uint64_t epoch,
                                                    size_t shard_count) {
  auto stored = std::make_shared<StoredDataset>();
  stored->name = name;
  stored->epoch = epoch;
  stored->total_series = index.data.size();
  stored->uniform_length = index.uniform_length;
  stored->bands = index.bands;
  stored->router = ShardRouter(epoch, shard_count);
  shard_count = stored->router.shard_count();

  const size_t count = index.data.size();
  const size_t band_count = index.bands.size();
  stored->shards.resize(shard_count);
  for (size_t s = 0; s < shard_count; ++s) {
    stored->shards[s].shard_id = s;
    stored->shards[s].data.set_name(index.data.name());
    stored->shards[s].envelopes.resize(band_count);
  }
  stored->locate.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t s = stored->router.ShardOf(i);
    ShardedDataset& shard = stored->shards[s];
    stored->locate[i].shard = static_cast<uint32_t>(s);
    stored->locate[i].local = static_cast<uint32_t>(shard.size());
    shard.global_index.push_back(i);
    shard.data.Add(std::move(index.data[i]));
    shard.head.push_back(index.head[i]);
    shard.tail.push_back(index.tail[i]);
    for (size_t b = 0; b < band_count; ++b) {
      shard.envelopes[b].push_back(std::move(index.envelopes[b][i]));
    }
  }
  return stored;
}

}  // namespace

DatasetStore::DatasetStore(size_t shard_count)
    : shard_count_(shard_count == 0 ? 1 : shard_count) {}

std::shared_ptr<const StoredDataset> DatasetStore::Register(
    const std::string& name, Dataset dataset, std::vector<size_t> bands) {
  // The expensive part (z-norm + envelope builds) runs outside the lock.
  return RegisterIndex(name,
                       BuildDatasetIndex(std::move(dataset), std::move(bands)));
}

std::shared_ptr<const StoredDataset> DatasetStore::RegisterIndex(
    const std::string& name, DatasetIndex index) {
  WARP_CHECK_MSG(!index.data.empty(), "cannot register an empty dataset");
  std::lock_guard<std::mutex> lock(mutex_);
  auto stored =
      PartitionIndex(name, std::move(index), next_epoch_++, shard_count_);
  datasets_[name] = stored;
  return stored;
}

std::shared_ptr<const StoredDataset> DatasetStore::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

bool DatasetStore::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return datasets_.erase(name) != 0;
}

std::vector<std::string> DatasetStore::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) names.push_back(name);
  return names;
}

uint64_t DatasetStore::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_epoch_;
}

}  // namespace serve
}  // namespace warp
