// Unit tests for the exact DTW kernels: golden values on tiny series,
// degenerate shapes, and agreement between the distance-only, banded,
// windowed, and path-recovering engines.

#include "warp/core/dtw.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "testing/reference_impls.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(DtwDistanceTest, IdenticalSeriesIsZero) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(DtwDistance(x, x), 0.0);
}

TEST(DtwDistanceTest, SingletonPair) {
  const std::vector<double> x = {2.0};
  const std::vector<double> y = {5.0};
  EXPECT_DOUBLE_EQ(DtwDistance(x, y), 9.0);
  EXPECT_DOUBLE_EQ(DtwDistance(x, y, CostKind::kAbsolute), 3.0);
}

TEST(DtwDistanceTest, SingletonAgainstSeries) {
  // A single point must align against every point of the other series.
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(DtwDistance(x, y), 1.0 + 4.0 + 9.0);
}

TEST(DtwDistanceTest, KnownSmallExample) {
  // Hand-computed: x = [0,1,2], y = [0,2,2].
  // Optimal alignment (0,0)(1,1)(2,1)(2,2) or (0,0)(1,1)(2,2):
  // (0-0)^2 + (1-2)^2 + (2-2)^2 = 1.
  const std::vector<double> x = {0.0, 1.0, 2.0};
  const std::vector<double> y = {0.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(DtwDistance(x, y), 1.0);
}

TEST(DtwDistanceTest, ShiftedStepAlignsToSmallCost) {
  // A step function and a one-sample-delayed copy: DTW should absorb the
  // shift almost entirely, Euclidean should not.
  std::vector<double> x(20, 0.0);
  std::vector<double> y(20, 0.0);
  for (size_t t = 10; t < 20; ++t) x[t] = 1.0;
  for (size_t t = 11; t < 20; ++t) y[t] = 1.0;
  EXPECT_DOUBLE_EQ(DtwDistance(x, y), 0.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(x, y), 1.0);
}

TEST(DtwDistanceTest, MatchesNaiveReferenceOnRandomWalks) {
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 2 + rng.UniformInt(40);
    const size_t m = 2 + rng.UniformInt(40);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    EXPECT_NEAR(DtwDistance(x, y), testing::RefDtw(x, y), 1e-9)
        << "n=" << n << " m=" << m;
    EXPECT_NEAR(DtwDistance(x, y, CostKind::kAbsolute),
                testing::RefDtw(x, y, CostKind::kAbsolute), 1e-9);
  }
}

TEST(DtwDistanceTest, ReportsCellCount) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {0.0, 1.0, 2.0, 3.0};
  uint64_t cells = 0;
  DtwDistance(x, y, CostKind::kSquared, &cells);
  EXPECT_EQ(cells, 16u);
}

TEST(CdtwTest, ZeroBandEqualsEuclideanOnEqualLengths) {
  Rng rng(7);
  const std::vector<double> x = gen::RandomWalk(50, rng);
  const std::vector<double> y = gen::RandomWalk(50, rng);
  EXPECT_NEAR(CdtwDistance(x, y, 0), EuclideanDistance(x, y), 1e-9);
}

TEST(CdtwTest, FullBandEqualsDtw) {
  Rng rng(8);
  const std::vector<double> x = gen::RandomWalk(60, rng);
  const std::vector<double> y = gen::RandomWalk(60, rng);
  EXPECT_NEAR(CdtwDistance(x, y, 60), DtwDistance(x, y), 1e-9);
  EXPECT_NEAR(CdtwDistanceFraction(x, y, 1.0), DtwDistance(x, y), 1e-9);
}

TEST(CdtwTest, DistanceDecreasesMonotonicallyInBand) {
  // Widening the band can only find an equal or better path.
  Rng rng(9);
  const std::vector<double> x = gen::RandomWalk(64, rng);
  const std::vector<double> y = gen::RandomWalk(64, rng);
  double previous = CdtwDistance(x, y, 0);
  for (size_t band = 1; band <= 64; band += 3) {
    const double d = CdtwDistance(x, y, band);
    EXPECT_LE(d, previous + 1e-12) << "band=" << band;
    previous = d;
  }
}

TEST(CdtwTest, MatchesReferenceAcrossBands) {
  Rng rng(10);
  const std::vector<double> x = gen::RandomWalk(30, rng);
  const std::vector<double> y = gen::RandomWalk(30, rng);
  for (size_t band : {0u, 1u, 2u, 5u, 10u, 29u, 100u}) {
    EXPECT_NEAR(CdtwDistance(x, y, band), testing::RefCdtw(x, y, band), 1e-9)
        << "band=" << band;
  }
}

TEST(CdtwTest, UnequalLengthsMatchReference) {
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    const size_t n = 2 + rng.UniformInt(30);
    const size_t m = 2 + rng.UniformInt(30);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    for (size_t band : {0u, 1u, 3u, 8u}) {
      EXPECT_NEAR(CdtwDistance(x, y, band), testing::RefCdtw(x, y, band),
                  1e-9)
          << "n=" << n << " m=" << m << " band=" << band;
    }
  }
}

TEST(CdtwTest, ReusedBufferGivesSameAnswer) {
  Rng rng(12);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  const std::vector<double> y = gen::RandomWalk(40, rng);
  DtwBuffer buffer;
  const double first = CdtwDistance(x, y, 5, CostKind::kSquared, &buffer);
  const double second = CdtwDistance(x, y, 5, CostKind::kSquared, &buffer);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_DOUBLE_EQ(first, CdtwDistance(x, y, 5));
}

TEST(CdtwAbandoningTest, ReturnsInfinityWhenThresholdExceeded) {
  const std::vector<double> x = {0.0, 0.0, 0.0, 0.0};
  const std::vector<double> y = {10.0, 10.0, 10.0, 10.0};
  const double d = CdtwDistanceAbandoning(x, y, 4, /*abandon_above=*/1.0);
  EXPECT_TRUE(std::isinf(d));
}

TEST(CdtwAbandoningTest, MatchesExactWhenNotAbandoned) {
  Rng rng(13);
  const std::vector<double> x = gen::RandomWalk(50, rng);
  const std::vector<double> y = gen::RandomWalk(50, rng);
  const double exact = CdtwDistance(x, y, 5);
  EXPECT_DOUBLE_EQ(CdtwDistanceAbandoning(x, y, 5, exact + 1.0), exact);
  // Threshold exactly at the distance must not abandon (strictly-greater
  // abandoning) so search code can use best-so-far as the threshold.
  EXPECT_DOUBLE_EQ(CdtwDistanceAbandoning(x, y, 5, exact), exact);
}

TEST(CdtwAbandoningTest, NeverAbandonsBelowTrueDistance) {
  // If it abandons, the true distance must exceed the threshold.
  Rng rng(14);
  for (int round = 0; round < 30; ++round) {
    const std::vector<double> x = gen::RandomWalk(32, rng);
    const std::vector<double> y = gen::RandomWalk(32, rng);
    const double exact = CdtwDistance(x, y, 4);
    const double threshold = exact * rng.Uniform(0.3, 1.5);
    const double abandoned = CdtwDistanceAbandoning(x, y, 4, threshold);
    if (std::isinf(abandoned)) {
      EXPECT_GT(exact, threshold);
    } else {
      EXPECT_DOUBLE_EQ(abandoned, exact);
    }
  }
}

TEST(WindowedDtwTest, FullWindowEqualsDtw) {
  Rng rng(15);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  const std::vector<double> y = gen::RandomWalk(35, rng);
  const WarpingWindow window = WarpingWindow::Full(x.size(), y.size());
  EXPECT_NEAR(WindowedDtwDistance(x, y, window), DtwDistance(x, y), 1e-9);
}

TEST(WindowedDtwTest, SakoeChibaWindowEqualsBandedKernel) {
  Rng rng(16);
  for (int round = 0; round < 10; ++round) {
    const size_t n = 2 + rng.UniformInt(40);
    const size_t m = 2 + rng.UniformInt(40);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    for (size_t band : {0u, 1u, 4u, 12u}) {
      const WarpingWindow window = WarpingWindow::SakoeChiba(n, m, band);
      EXPECT_NEAR(WindowedDtwDistance(x, y, window),
                  CdtwDistance(x, y, band), 1e-9)
          << "n=" << n << " m=" << m << " band=" << band;
    }
  }
}

TEST(WindowedDtwTest, PathVersionAgreesWithDistanceVersion) {
  Rng rng(17);
  const std::vector<double> x = gen::RandomWalk(50, rng);
  const std::vector<double> y = gen::RandomWalk(45, rng);
  const WarpingWindow window =
      WarpingWindow::SakoeChiba(x.size(), y.size(), 8);
  const DtwResult result = WindowedDtw(x, y, window);
  EXPECT_NEAR(result.distance, WindowedDtwDistance(x, y, window), 1e-9);
  EXPECT_TRUE(result.path.IsValid(x.size(), y.size()));
}

TEST(WindowedDtwTest, PathCostEqualsReportedDistance) {
  Rng rng(18);
  const std::vector<double> x = gen::RandomWalk(30, rng);
  const std::vector<double> y = gen::RandomWalk(30, rng);
  const DtwResult result = Dtw(x, y);
  EXPECT_NEAR(result.path.CostAlong(x, y), result.distance, 1e-9);
}

TEST(WindowedDtwTest, PathStaysInsideWindow) {
  Rng rng(19);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  const std::vector<double> y = gen::RandomWalk(40, rng);
  const WarpingWindow window =
      WarpingWindow::SakoeChiba(x.size(), y.size(), 3);
  const DtwResult result = WindowedDtw(x, y, window);
  for (const PathPoint& p : result.path.points()) {
    EXPECT_TRUE(window.Contains(p.i, p.j));
  }
  EXPECT_LE(result.path.MaxDiagonalDeviation(), 3u);
}

TEST(WindowedDtwTest, AnyValidPathUpperBoundsDistance) {
  Rng rng(20);
  const std::vector<double> x = gen::RandomWalk(25, rng);
  const std::vector<double> y = gen::RandomWalk(25, rng);
  const double optimal = DtwDistance(x, y);
  // The banded optimum is a valid-but-restricted path: its cost can never
  // be below the unconstrained optimum.
  for (size_t band : {0u, 1u, 2u, 5u}) {
    const DtwResult banded = Cdtw(x, y, band);
    EXPECT_GE(banded.distance, optimal - 1e-12);
    EXPECT_NEAR(banded.path.CostAlong(x, y), banded.distance, 1e-9);
  }
}

TEST(EuclideanTest, BasicAndAbandoning) {
  const std::vector<double> x = {0.0, 0.0, 3.0};
  const std::vector<double> y = {0.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(x, y), 16.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(x, y, CostKind::kAbsolute), 4.0);
  EXPECT_TRUE(std::isinf(EuclideanDistanceAbandoning(x, y, 15.0)));
  EXPECT_DOUBLE_EQ(EuclideanDistanceAbandoning(x, y, 16.0), 16.0);
}

TEST(MultiDtwTest, SingleChannelMatchesScalarDtw) {
  Rng rng(21);
  const std::vector<double> x = gen::RandomWalk(30, rng);
  const std::vector<double> y = gen::RandomWalk(30, rng);
  const MultiSeries mx(std::vector<std::vector<double>>{x});
  const MultiSeries my(std::vector<std::vector<double>>{y});
  EXPECT_NEAR(MultiDtwDistance(mx, my), DtwDistance(x, y), 1e-9);
  EXPECT_NEAR(MultiCdtwDistance(mx, my, 4), CdtwDistance(x, y, 4), 1e-9);
}

TEST(MultiDtwTest, DuplicatedChannelDoublesDistance) {
  Rng rng(22);
  const std::vector<double> x = gen::RandomWalk(30, rng);
  const std::vector<double> y = gen::RandomWalk(30, rng);
  const MultiSeries mx(std::vector<std::vector<double>>{x, x});
  const MultiSeries my(std::vector<std::vector<double>>{y, y});
  EXPECT_NEAR(MultiDtwDistance(mx, my), 2.0 * DtwDistance(x, y), 1e-9);
}

TEST(MultiDtwTest, PathVersionAgrees) {
  Rng rng(23);
  const MultiSeries mx(std::vector<std::vector<double>>{
      gen::RandomWalk(20, rng), gen::RandomWalk(20, rng)});
  const MultiSeries my(std::vector<std::vector<double>>{
      gen::RandomWalk(24, rng), gen::RandomWalk(24, rng)});
  const WarpingWindow window = WarpingWindow::Full(20, 24);
  const DtwResult result = MultiWindowedDtw(mx, my, window);
  EXPECT_NEAR(result.distance, MultiDtwDistance(mx, my), 1e-9);
  EXPECT_TRUE(result.path.IsValid(20, 24));
}

}  // namespace
}  // namespace warp
