#include <chrono>

namespace warp {
long TsNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace warp
