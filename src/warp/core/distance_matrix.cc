#include "warp/core/distance_matrix.h"

#include <cmath>
#include <utility>

#include "warp/common/assert.h"
#include "warp/common/parallel.h"
#include "warp/common/table_printer.h"

namespace warp {

DistanceMatrix::DistanceMatrix(size_t n) : n_(n) {
  WARP_CHECK(n > 0);
  values_.assign(n * (n - 1) / 2, 0.0);
}

size_t DistanceMatrix::CondensedIndex(size_t i, size_t j) const {
  WARP_DCHECK(i < j && j < n_);
  // Row i of the upper triangle starts after sum_{k<i} (n-1-k) entries.
  return i * (2 * n_ - i - 1) / 2 + (j - i - 1);
}

double DistanceMatrix::at(size_t i, size_t j) const {
  WARP_CHECK(i < n_ && j < n_);
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  return values_[CondensedIndex(i, j)];
}

void DistanceMatrix::set(size_t i, size_t j, double value) {
  WARP_CHECK(i < n_ && j < n_);
  WARP_CHECK_MSG(i != j, "diagonal is fixed at zero");
  if (i > j) std::swap(i, j);
  values_[CondensedIndex(i, j)] = value;
}

std::string DistanceMatrix::ToString(std::span<const std::string> labels,
                                     int precision) const {
  WARP_CHECK(labels.size() == n_);
  std::vector<std::string> headers;
  headers.push_back("");
  for (const auto& label : labels) headers.push_back(label);
  TablePrinter table(std::move(headers));
  for (size_t i = 0; i < n_; ++i) {
    std::vector<std::string> row;
    row.push_back(labels[i]);
    for (size_t j = 0; j < n_; ++j) {
      if (j < i) {
        row.push_back("");
      } else {
        row.push_back(TablePrinter::FormatDouble(at(i, j), precision));
      }
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

std::pair<size_t, size_t> CondensedPairFromIndex(size_t index, size_t n) {
  WARP_DCHECK(n >= 2 && index < n * (n - 1) / 2);
  const double b = 2.0 * static_cast<double>(n) - 1.0;
  const double discriminant = b * b - 8.0 * static_cast<double>(index);
  size_t i = static_cast<size_t>((b - std::sqrt(discriminant)) / 2.0);
  if (i >= n - 1) i = n - 2;
  while (i > 0 && CondensedRowStart(i, n) > index) --i;
  while (CondensedRowStart(i + 1, n) <= index) ++i;
  return {i, i + 1 + (index - CondensedRowStart(i, n))};
}

DistanceMatrix ComputePairwiseMatrix(
    const std::vector<std::vector<double>>& series,
    const SeriesMeasure& measure, size_t threads) {
  WARP_CHECK(!series.empty());
  const size_t n = series.size();
  DistanceMatrix matrix(n);
  if (n < 2) return matrix;

  threads = ResolveThreadCount(threads);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        matrix.set(i, j, measure(series[i], series[j]));
      }
    }
    return matrix;
  }

  // Chunk the condensed pair range: every chunk owns a disjoint slice of
  // matrix slots, so the parallel fill is race-free and bitwise equal to
  // the serial fill.
  constexpr size_t kPairGrain = 16;
  const size_t total_pairs = n * (n - 1) / 2;
  ThreadPool pool(threads);
  ParallelFor(&pool, 0, total_pairs, kPairGrain,
              [&](size_t chunk_begin, size_t chunk_end, size_t /*worker*/) {
                auto [i, j] = CondensedPairFromIndex(chunk_begin, n);
                for (size_t p = chunk_begin; p < chunk_end; ++p) {
                  matrix.set(i, j, measure(series[i], series[j]));
                  if (++j == n) {
                    ++i;
                    j = i + 1;
                  }
                }
              });
  return matrix;
}

}  // namespace warp
