// Batcher tests: group-commit coalescing must change scheduling only —
// every answer equals a direct engine run, under any submission pattern.

#include "warp/serve/batcher.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/query_engine.h"

namespace warp {
namespace serve {
namespace {

class BatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.Register("d", gen::RandomWalkDataset(30, 48, 3), {5});
    const Dataset queries = gen::RandomWalkDataset(24, 48, 31);
    for (size_t i = 0; i < queries.size(); ++i) {
      ServeRequest request;
      request.id = static_cast<int64_t>(i);
      request.op = QueryOp::k1Nn;
      request.dataset = "d";
      request.query = queries[i].values();
      requests_.push_back(std::move(request));
    }
  }

  DatasetStore store_;
  std::vector<ServeRequest> requests_;
};

TEST_F(BatcherTest, EmptySubmissionReturnsEmpty) {
  QueryEngine engine(&store_, nullptr, 1);
  Batcher batcher(&engine);
  std::vector<ServeResponse> responses{ServeResponse{}};
  batcher.Execute({}, &responses);
  EXPECT_TRUE(responses.empty());
}

TEST_F(BatcherTest, SingleSubmitterMatchesDirectRun) {
  QueryEngine engine(&store_, nullptr, 2);
  QueryEngine reference(&store_, nullptr, 1);
  Batcher batcher(&engine);
  std::vector<ServeResponse> responses;
  batcher.Execute(requests_, &responses);
  ASSERT_EQ(responses.size(), requests_.size());
  for (size_t i = 0; i < requests_.size(); ++i) {
    const ServeResponse expected = reference.Run(requests_[i]);
    EXPECT_EQ(responses[i].id, requests_[i].id);
    ASSERT_EQ(responses[i].neighbors.size(), 1u);
    EXPECT_EQ(responses[i].neighbors[0].index, expected.neighbors[0].index);
    EXPECT_EQ(responses[i].neighbors[0].distance,
              expected.neighbors[0].distance);
  }
}

// Many threads submitting concurrently: answers are per-submission
// correct regardless of how the dispatcher groups them, and at least one
// multi-submission batch actually forms under contention.
TEST_F(BatcherTest, ConcurrentSubmittersGetTheirOwnAnswers) {
  QueryEngine engine(&store_, nullptr, 2);
  QueryEngine reference(&store_, nullptr, 1);
  Batcher batcher(&engine);

  constexpr size_t kClients = 8;
  constexpr size_t kRounds = 6;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        const ServeRequest& request =
            requests_[(c * kRounds + round) % requests_.size()];
        std::vector<ServeResponse> responses;
        batcher.Execute({request}, &responses);
        if (responses.size() != 1 || responses[0].id != request.id ||
            responses[0].neighbors.size() != 1) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);

  const uint64_t batches = batcher.batches_dispatched();
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, kClients * kRounds);

  // Spot-check correctness of one answer against a direct run.
  std::vector<ServeResponse> check;
  batcher.Execute({requests_[0]}, &check);
  const ServeResponse expected = reference.Run(requests_[0]);
  EXPECT_EQ(check[0].neighbors[0].index, expected.neighbors[0].index);
  EXPECT_EQ(check[0].neighbors[0].distance, expected.neighbors[0].distance);
}

}  // namespace
}  // namespace serve
}  // namespace warp
