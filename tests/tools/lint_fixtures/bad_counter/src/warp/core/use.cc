#include "warp/common/metrics.h"

namespace warp {
void CoreTick() {
  obs::Bump(obs::Counter::kUsed);
  obs::Bump(obs::Counter::kPhantom);
}
}  // namespace warp
