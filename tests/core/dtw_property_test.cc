// Parameterized property sweeps over the whole DTW family.
//
// Each property is instantiated over a grid of (length, band/radius, cost
// kind, seed) combinations via INSTANTIATE_TEST_SUITE_P, so one logical
// invariant is exercised across dozens of concrete configurations.

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "testing/reference_impls.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/lower_bounds.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

// (length, band, cost kind, seed)
using BandParam = std::tuple<size_t, size_t, CostKind, uint64_t>;

class CdtwPropertyTest : public ::testing::TestWithParam<BandParam> {
 protected:
  void SetUp() override {
    const auto [length, band, cost, seed] = GetParam();
    length_ = length;
    band_ = band;
    cost_ = cost;
    Rng rng(seed);
    x_ = ZNormalized(gen::RandomWalk(length, rng));
    y_ = ZNormalized(gen::RandomWalk(length, rng));
  }

  size_t length_;
  size_t band_;
  CostKind cost_;
  std::vector<double> x_;
  std::vector<double> y_;
};

TEST_P(CdtwPropertyTest, MatchesNaiveReference) {
  EXPECT_NEAR(CdtwDistance(x_, y_, band_, cost_),
              testing::RefCdtw(x_, y_, band_, cost_), 1e-9);
}

TEST_P(CdtwPropertyTest, SymmetricInArguments) {
  EXPECT_NEAR(CdtwDistance(x_, y_, band_, cost_),
              CdtwDistance(y_, x_, band_, cost_), 1e-9);
}

TEST_P(CdtwPropertyTest, BoundedBelowByUnconstrainedDtw) {
  EXPECT_GE(CdtwDistance(x_, y_, band_, cost_),
            DtwDistance(x_, y_, cost_) - 1e-9);
}

TEST_P(CdtwPropertyTest, BoundedAboveByEuclidean) {
  // The diagonal is an admissible path in every Sakoe–Chiba window.
  EXPECT_LE(CdtwDistance(x_, y_, band_, cost_),
            EuclideanDistance(x_, y_, cost_) + 1e-9);
}

TEST_P(CdtwPropertyTest, PathEngineAgreesAndPathIsValid) {
  const DtwResult result = Cdtw(x_, y_, band_, cost_);
  EXPECT_NEAR(result.distance, CdtwDistance(x_, y_, band_, cost_), 1e-9);
  EXPECT_TRUE(result.path.IsValid(length_, length_));
  EXPECT_NEAR(result.path.CostAlong(x_, y_, cost_), result.distance, 1e-9);
  EXPECT_LE(result.path.MaxDiagonalDeviation(), band_);
}

TEST_P(CdtwPropertyTest, LbKeoghIsALowerBound) {
  const Envelope env = ComputeEnvelope(x_, band_);
  EXPECT_LE(LbKeogh(env, y_, cost_),
            CdtwDistance(x_, y_, band_, cost_) + 1e-9);
}

TEST_P(CdtwPropertyTest, SelfDistanceIsZero) {
  EXPECT_NEAR(CdtwDistance(x_, x_, band_, cost_), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CdtwPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(2, 9, 33, 128),
                       ::testing::Values<size_t>(0, 1, 5, 16),
                       ::testing::Values(CostKind::kSquared,
                                         CostKind::kAbsolute),
                       ::testing::Values<uint64_t>(101, 202)));

// ---------------------------------------------------------------------------

// (length x, length y, radius, seed)
using FastDtwParam = std::tuple<size_t, size_t, size_t, uint64_t>;

class FastDtwPropertyTest : public ::testing::TestWithParam<FastDtwParam> {
 protected:
  void SetUp() override {
    const auto [n, m, radius, seed] = GetParam();
    n_ = n;
    m_ = m;
    radius_ = radius;
    Rng rng(seed);
    x_ = gen::RandomWalk(n, rng);
    y_ = gen::RandomWalk(m, rng);
  }

  size_t n_;
  size_t m_;
  size_t radius_;
  std::vector<double> x_;
  std::vector<double> y_;
};

TEST_P(FastDtwPropertyTest, NeverBelowExactDtw) {
  EXPECT_GE(FastDtwDistance(x_, y_, radius_), DtwDistance(x_, y_) - 1e-9);
}

TEST_P(FastDtwPropertyTest, PathIsValidAndConsistent) {
  const DtwResult result = FastDtw(x_, y_, radius_);
  EXPECT_TRUE(result.path.IsValid(n_, m_));
  EXPECT_NEAR(result.path.CostAlong(x_, y_), result.distance, 1e-9);
}

TEST_P(FastDtwPropertyTest, DeterministicAcrossCalls) {
  EXPECT_DOUBLE_EQ(FastDtwDistance(x_, y_, radius_),
                   FastDtwDistance(x_, y_, radius_));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastDtwPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(2, 31, 64, 257),
                       ::testing::Values<size_t>(2, 31, 64, 257),
                       ::testing::Values<size_t>(0, 1, 5, 20),
                       ::testing::Values<uint64_t>(303)));

// ---------------------------------------------------------------------------
// Early-abandoning soundness across a grid of thresholds.

using AbandonParam = std::tuple<size_t, double, uint64_t>;

class AbandonPropertyTest : public ::testing::TestWithParam<AbandonParam> {};

TEST_P(AbandonPropertyTest, AbandonImpliesDistanceAboveThreshold) {
  const auto [band, threshold_scale, seed] = GetParam();
  Rng rng(seed);
  for (int round = 0; round < 10; ++round) {
    const std::vector<double> x = ZNormalized(gen::RandomWalk(48, rng));
    const std::vector<double> y = ZNormalized(gen::RandomWalk(48, rng));
    const double exact = CdtwDistance(x, y, band);
    const double threshold = exact * threshold_scale;
    const double result = CdtwDistanceAbandoning(x, y, band, threshold);
    if (std::isinf(result)) {
      EXPECT_GT(exact, threshold);
    } else {
      EXPECT_DOUBLE_EQ(result, exact);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AbandonPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(0, 2, 8, 48),
                       ::testing::Values(0.25, 0.5, 0.9, 1.0, 1.1, 2.0),
                       ::testing::Values<uint64_t>(404, 505)));

}  // namespace
}  // namespace warp
