#include <sys/wait.h>

namespace warp {
long Rogue() {
  long pid = fork();
  if (pid > 0) kill(static_cast<int>(pid), 9);
  return pid;
}
}  // namespace warp
