// Worker lifecycle management for the multi-process cluster
// (docs/SERVING.md, "Multi-process cluster").
//
// The supervisor owns the N shard-worker processes: it spawns them,
// scrapes each one's "ready port=<P>" line to learn its ephemeral port,
// detects death (reaping plus optional liveness pings so a wedged-but-
// alive worker is also caught), and restarts dead workers with bounded
// exponential backoff, re-feeding them from the snapshot directory.
// While a worker is down its shard is simply reported as unavailable —
// the router degrades to partial answers instead of hanging.

#ifndef WARP_CLUSTER_SUPERVISOR_H_
#define WARP_CLUSTER_SUPERVISOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "warp/cluster/proc.h"
#include "warp/cluster/worker.h"
#include "warp/common/stopwatch.h"

namespace warp {
namespace cluster {

struct SupervisorOptions {
  size_t shards = 1;
  std::string worker_binary;  // Path to a warp_serve build.
  std::string snapshot_dir;   // Re-fed to every (re)started worker.
  size_t threads = 1;         // Scan threads per worker.
  size_t cache_capacity = 256;
  size_t max_queue_depth = 1024;
  int ready_timeout_ms = 30000;     // Max wait for a worker's ready line.
  int restart_backoff_ms = 200;     // First-retry delay; doubles per failure.
  int restart_backoff_max_ms = 5000;
  int poll_interval_ms = 20;        // Monitor-loop cadence.
  int ping_interval_ms = 1000;      // Liveness ping cadence; <= 0 disables.
  int ping_timeout_ms = 1500;       // Connect + reply budget per ping.
};

// Router-visible view of one worker slot.
struct WorkerStatus {
  size_t shard_id = 0;
  bool up = false;
  int port = 0;
  uint64_t generation = 0;  // Bumps on every successful (re)start.
  long pid = -1;
  uint64_t restarts = 0;    // Successful restarts (not counting Start()).
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorOptions& options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Spawns all workers, waits for every ready line, then starts the
  // monitor thread. Returns false and fills *error when any worker fails
  // to come up (already-started workers are torn down).
  bool Start(std::string* error);

  // Disables restarts, terminates running workers (SIGTERM, escalating
  // to SIGKILL), reaps them, and joins the monitor thread. Idempotent.
  void Stop();

  // Stops restarting dead workers without killing live ones. The router
  // calls this on a client `shutdown` before forwarding it to the
  // workers, so their clean exits are not "failures" to resurrect.
  void DisableRestarts();

  size_t shards() const { return options_.shards; }
  WorkerStatus Status(size_t shard) const;
  std::vector<WorkerStatus> StatusAll() const;

  // The live pid of shard `shard`'s worker, or -1 while it is down.
  // Tests and smoke scripts use this for fault injection (SIGKILL).
  long worker_pid(size_t shard) const;

 private:
  struct Slot {
    ChildProcess proc;
    WorkerStatus status;
    int backoff_ms = 0;          // Next restart delay; 0 = base.
    double restart_due_ms = 0;   // On clock_; only meaningful when down.
    double up_since_ms = 0;      // On clock_; for backoff reset.
    double last_ping_ms = 0;     // On clock_.
  };

  void MonitorLoop();
  // Spawns shard `shard` and waits for its ready line. Fills *slot's
  // proc/status on success. Runs WITHOUT holding mu_ (the ready wait can
  // take seconds); only the caller touches a down slot's process.
  bool SpawnAndAwaitReady(size_t shard, ChildProcess* proc, int* port,
                          long* pid, std::string* error);
  bool PingWorker(int port) const;

  const SupervisorOptions options_;
  const Stopwatch clock_;  // Common timeline for backoff deadlines.

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  bool restarts_enabled_ = true;
  bool stopping_ = false;
  bool started_ = false;

  std::thread monitor_;
};

}  // namespace cluster
}  // namespace warp

#endif  // WARP_CLUSTER_SUPERVISOR_H_
