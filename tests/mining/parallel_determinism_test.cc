// Bitwise-determinism tests for every parallelized hot path: the parallel
// execution layer's contract is that thread count changes wall-clock time
// and nothing else. Each test runs a workload serially and at 1, 2, and 8
// threads and asserts exact equality — distances to the bit, labels,
// counts, and cascade counters.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "harness/pairwise.h"
#include "warp/core/distance_matrix.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/gesture.h"
#include "warp/mining/kmeans.h"
#include "warp/mining/nn_classifier.h"

namespace warp {
namespace {

constexpr std::array<size_t, 3> kThreadCounts = {1, 2, 8};

gen::GestureOptions SmallOptions() {
  gen::GestureOptions options;
  options.length = 64;
  options.num_classes = 3;
  options.seed = 99;
  return options;
}

SeriesMeasure CdtwMeasure(size_t band) {
  return [band](std::span<const double> a, std::span<const double> b) {
    return CdtwDistance(a, b, band);
  };
}

std::vector<std::vector<double>> RawSeries(const Dataset& dataset) {
  std::vector<std::vector<double>> series;
  for (size_t i = 0; i < dataset.size(); ++i) {
    series.push_back(dataset[i].values());
  }
  return series;
}

TEST(ParallelDeterminismTest, CondensedPairIndexRoundTrips) {
  for (const size_t n : {2u, 3u, 7u, 50u}) {
    size_t index = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        EXPECT_EQ(CondensedRowStart(i, n) + (j - i - 1), index);
        const auto [pi, pj] = CondensedPairFromIndex(index, n);
        EXPECT_EQ(pi, i) << "n=" << n << " index=" << index;
        EXPECT_EQ(pj, j) << "n=" << n << " index=" << index;
        ++index;
      }
    }
  }
}

TEST(ParallelDeterminismTest, PairwiseMatrixBitwiseEqualAtAnyThreadCount) {
  const Dataset data = gen::MakeGestureDataset(7, SmallOptions());
  const std::vector<std::vector<double>> series = RawSeries(data);
  const SeriesMeasure measure = CdtwMeasure(6);
  const DistanceMatrix serial = ComputePairwiseMatrix(series, measure);
  for (const size_t threads : kThreadCounts) {
    const DistanceMatrix parallel =
        ComputePairwiseMatrix(series, measure, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      for (size_t j = i + 1; j < serial.size(); ++j) {
        // Exact (bitwise) equality, not NEAR: the parallel fill computes
        // the identical expression into the identical slot.
        EXPECT_EQ(parallel.at(i, j), serial.at(i, j))
            << "threads=" << threads << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(ParallelDeterminismTest, Evaluate1NnCountsEqualAtAnyThreadCount) {
  const Dataset data = gen::MakeGestureDataset(8, SmallOptions());
  const auto [train, test] = data.StratifiedSplit(0.5);
  const SeriesMeasure measure = CdtwMeasure(6);
  const ClassificationStats serial = Evaluate1Nn(train, test, measure);
  for (const size_t threads : kThreadCounts) {
    const ClassificationStats parallel =
        Evaluate1Nn(train, test, measure, threads);
    EXPECT_EQ(parallel.total, serial.total) << "threads=" << threads;
    EXPECT_EQ(parallel.correct, serial.correct) << "threads=" << threads;
    EXPECT_EQ(parallel.accuracy, serial.accuracy) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, EvaluateKnnCountsEqualAtAnyThreadCount) {
  const Dataset data = gen::MakeGestureDataset(8, SmallOptions());
  const auto [train, test] = data.StratifiedSplit(0.5);
  const SeriesMeasure measure = CdtwMeasure(6);
  const ClassificationStats serial = EvaluateKnn(train, test, 3, measure);
  for (const size_t threads : kThreadCounts) {
    const ClassificationStats parallel =
        EvaluateKnn(train, test, 3, measure, threads);
    EXPECT_EQ(parallel.correct, serial.correct) << "threads=" << threads;
    EXPECT_EQ(parallel.total, serial.total) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, AcceleratedCascadeStatsSumIdentically) {
  const Dataset data = gen::MakeGestureDataset(10, SmallOptions());
  const auto [train, test] = data.StratifiedSplit(0.5);
  const AcceleratedNnClassifier classifier(train, 5);
  const ClassificationStats serial = classifier.Evaluate(test);
  // The cascade must actually fire for this test to mean anything.
  ASSERT_GT(serial.candidates, 0u);
  ASSERT_GT(serial.pruned_by_kim + serial.pruned_by_keogh +
                serial.abandoned_dtw,
            0u);
  for (const size_t threads : kThreadCounts) {
    const ClassificationStats parallel = classifier.Evaluate(test, threads);
    EXPECT_EQ(parallel.total, serial.total) << "threads=" << threads;
    EXPECT_EQ(parallel.correct, serial.correct) << "threads=" << threads;
    EXPECT_EQ(parallel.candidates, serial.candidates)
        << "threads=" << threads;
    EXPECT_EQ(parallel.pruned_by_kim, serial.pruned_by_kim)
        << "threads=" << threads;
    EXPECT_EQ(parallel.pruned_by_keogh, serial.pruned_by_keogh)
        << "threads=" << threads;
    EXPECT_EQ(parallel.abandoned_dtw, serial.abandoned_dtw)
        << "threads=" << threads;
    EXPECT_EQ(parallel.full_dtw, serial.full_dtw) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, TimeAllPairsParallelChecksumBitwiseEqual) {
  const Dataset data = gen::MakeGestureDataset(8, SmallOptions());
  const size_t sample = data.size();
  // Serial reference via the templated single-core harness.
  const bench::PairwiseTiming serial = bench::TimeAllPairs(
      data, sample, [](std::span<const double> a, std::span<const double> b) {
        return CdtwDistance(a, b, 6);
      });
  const auto factory = []() {
    auto buffer = std::make_shared<DtwBuffer>();
    return [buffer](std::span<const double> a, std::span<const double> b) {
      return CdtwDistance(a, b, 6, CostKind::kSquared, buffer.get());
    };
  };
  for (const size_t threads : kThreadCounts) {
    const bench::PairwiseTiming parallel =
        bench::TimeAllPairsParallel(data, sample, threads, factory);
    EXPECT_EQ(parallel.pairs_timed, serial.pairs_timed)
        << "threads=" << threads;
    EXPECT_EQ(parallel.checksum, serial.checksum) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, TimeAllPairsParallelFastDtwChecksum) {
  const Dataset data = gen::MakeGestureDataset(6, SmallOptions());
  const auto factory = []() {
    return [](std::span<const double> a, std::span<const double> b) {
      return FastDtwDistance(a, b, 3);
    };
  };
  const bench::PairwiseTiming one =
      bench::TimeAllPairsParallel(data, data.size(), 1, factory);
  for (const size_t threads : kThreadCounts) {
    const bench::PairwiseTiming many =
        bench::TimeAllPairsParallel(data, data.size(), threads, factory);
    EXPECT_EQ(many.checksum, one.checksum) << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, KMeansBitwiseEqualAtAnyThreadCount) {
  const Dataset data = gen::MakeGestureDataset(9, SmallOptions());
  const std::vector<std::vector<double>> series = RawSeries(data);
  KMeansOptions options;
  options.k = 3;
  options.band = 8;
  options.max_iterations = 4;
  options.seed = 7;
  const KMeansResult serial = DtwKMeans(series, options);
  for (const size_t threads : kThreadCounts) {
    KMeansOptions parallel_options = options;
    parallel_options.threads = threads;
    const KMeansResult parallel = DtwKMeans(series, parallel_options);
    EXPECT_EQ(parallel.assignment, serial.assignment)
        << "threads=" << threads;
    EXPECT_EQ(parallel.inertia, serial.inertia) << "threads=" << threads;
    EXPECT_EQ(parallel.iterations_run, serial.iterations_run);
    EXPECT_EQ(parallel.converged, serial.converged);
    ASSERT_EQ(parallel.centroids.size(), serial.centroids.size());
    for (size_t c = 0; c < serial.centroids.size(); ++c) {
      EXPECT_EQ(parallel.centroids[c], serial.centroids[c])
          << "threads=" << threads << " centroid=" << c;
    }
  }
}

}  // namespace
}  // namespace warp
