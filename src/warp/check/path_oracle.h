// Invariant oracles for warping paths.
//
// The paper's whole argument rests on exactness, and exactness rests on
// every recovered alignment being a *legal* warping path: boundary
// (starts at (0,0), ends at (n-1,m-1)), monotonicity and continuity
// (steps from {down, right, diagonal}), membership in the constraining
// window, and cost consistency (the path's summed local cost equals the
// reported distance). These oracles machine-check each property and
// explain the first violation; the property-fuzz harness in tests/check/
// drives them over randomized inputs, and the core kernels re-run the
// cheap ones through WARP_DCHECK hooks in debug builds.
//
// Like the rest of the library, oracles do not throw: they return false
// and describe the violation through `error` (which must be non-null).

#ifndef WARP_CHECK_PATH_ORACLE_H_
#define WARP_CHECK_PATH_ORACLE_H_

#include <cstddef>
#include <span>
#include <string>

#include "warp/common/cost.h"
#include "warp/core/warping_path.h"
#include "warp/core/window.h"

namespace warp {
namespace check {

// Boundary + monotonicity + continuity for series of lengths (n, m).
bool CheckPath(const WarpingPath& path, size_t n, size_t m,
               std::string* error);

// CheckPath for the window's shape, plus membership: every path cell must
// lie inside `window`. This is the invariant that makes windowed DTW
// results trustworthy — a path that escapes the window was never explored
// by the DP and its cost is meaningless.
bool CheckPathInWindow(const WarpingPath& path, const WarpingWindow& window,
                       std::string* error);

// The path's accumulated local cost must equal the distance the kernel
// reported, within `tolerance` (absolute + relative). Catches traceback
// bugs where the path and the DP value silently disagree.
bool CheckPathCost(const WarpingPath& path, std::span<const double> x,
                   std::span<const double> y, CostKind cost,
                   double reported_distance, double tolerance,
                   std::string* error);

}  // namespace check
}  // namespace warp

#endif  // WARP_CHECK_PATH_ORACLE_H_
