// Tests for the histogram/gauge registry: bucket geometry, percentile
// ranks, thread-merge determinism, and the OFF-build no-op guarantee.

#include "warp/obs/histogram.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace warp {
namespace obs {
namespace {

TEST(HistogramTest, NamesAreUniqueAndNonEmpty) {
  for (size_t i = 0; i < kNumHistograms; ++i) {
    const char* name = HistogramName(static_cast<Histogram>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    for (size_t j = 0; j < i; ++j) {
      EXPECT_STRNE(name, HistogramName(static_cast<Histogram>(j)));
    }
  }
  for (size_t i = 0; i < kNumGauges; ++i) {
    const char* name = GaugeName(static_cast<Gauge>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    for (size_t j = 0; j < i; ++j) {
      EXPECT_STRNE(name, GaugeName(static_cast<Gauge>(j)));
    }
  }
}

TEST(HistogramTest, BucketIndexIsBitWidth) {
  EXPECT_EQ(HistogramBucketIndex(0), 0u);
  EXPECT_EQ(HistogramBucketIndex(1), 1u);
  EXPECT_EQ(HistogramBucketIndex(2), 2u);
  EXPECT_EQ(HistogramBucketIndex(3), 2u);
  EXPECT_EQ(HistogramBucketIndex(4), 3u);
  EXPECT_EQ(HistogramBucketIndex(7), 3u);
  EXPECT_EQ(HistogramBucketIndex(8), 4u);
  EXPECT_EQ(HistogramBucketIndex(255), 8u);
  EXPECT_EQ(HistogramBucketIndex(256), 9u);
  EXPECT_EQ(HistogramBucketIndex(~uint64_t{0}), 64u);
}

TEST(HistogramTest, BucketBoundIsInclusiveUpperEdge) {
  EXPECT_EQ(HistogramBucketBound(0), 0u);
  EXPECT_EQ(HistogramBucketBound(1), 1u);
  EXPECT_EQ(HistogramBucketBound(2), 3u);
  EXPECT_EQ(HistogramBucketBound(3), 7u);
  EXPECT_EQ(HistogramBucketBound(63), (uint64_t{1} << 63) - 1);
  EXPECT_EQ(HistogramBucketBound(64), ~uint64_t{0});
  // Every value lands in a bucket whose bound contains it and whose
  // predecessor's bound does not.
  for (const uint64_t value :
       {0ull, 1ull, 5ull, 100ull, 4096ull, 1ull << 30}) {
    const size_t bucket = HistogramBucketIndex(value);
    EXPECT_LE(value, HistogramBucketBound(bucket));
    if (bucket > 0) {
      EXPECT_GT(value, HistogramBucketBound(bucket - 1));
    }
  }
}

TEST(HistogramTest, PercentileIsBucketUpperBoundAtCeilRank) {
  HistogramData data;
  // 99 samples of value 1 (bucket 1) and one of value 1000 (bucket 10).
  data.count = 100;
  data.sum = 99 + 1000;
  data.buckets[1] = 99;
  data.buckets[10] = 1;
  EXPECT_EQ(data.Percentile(0.50), 1u);
  EXPECT_EQ(data.Percentile(0.99), 1u);    // rank 99 is still bucket 1
  EXPECT_EQ(data.Percentile(1.0), 1023u);  // rank 100 is the outlier
  EXPECT_EQ(data.Percentile(0.0), 1u);     // clamps to rank 1
  EXPECT_DOUBLE_EQ(data.Mean(), 10.99);

  const HistogramData empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.Percentile(0.5), 0u);
  EXPECT_EQ(empty.Mean(), 0.0);
}

TEST(HistogramTest, SnapshotDifferenceSaturatesAtZero) {
  HistogramSnapshot a;
  HistogramSnapshot b;
  a.series[0].count = 10;
  a.series[0].sum = 100;
  a.series[0].buckets[3] = 10;
  b.series[0].count = 3;
  b.series[0].sum = 30;
  b.series[0].buckets[3] = 3;
  b.series[1].count = 5;  // Larger than a's 0: must clamp, not wrap.
  const HistogramSnapshot d = a - b;
  EXPECT_EQ(d.series[0].count, 7u);
  EXPECT_EQ(d.series[0].sum, 70u);
  EXPECT_EQ(d.series[0].buckets[3], 7u);
  EXPECT_EQ(d.series[1].count, 0u);
}

TEST(HistogramTest, RecordAccumulatesCountSumAndBuckets) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  const Histogram h = Histogram::kServeCellsPerQuery;
  const HistogramSnapshot before = SnapshotHistograms();
  RecordValue(h, 0);
  RecordValue(h, 5);
  RecordValue(h, 5);
  RecordValue(h, 300);
  const HistogramData delta = HistogramsSince(before).Get(h);
  EXPECT_EQ(delta.count, 4u);
  EXPECT_EQ(delta.sum, 310u);
  EXPECT_EQ(delta.buckets[0], 1u);                        // the zero
  EXPECT_EQ(delta.buckets[HistogramBucketIndex(5)], 2u);  // both fives
  EXPECT_EQ(delta.buckets[HistogramBucketIndex(300)], 1u);
}

TEST(HistogramTest, RecordMicrosClampsNegativeToZero) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  const Histogram h = Histogram::kServeStageMerge;
  const HistogramSnapshot before = SnapshotHistograms();
  RecordMicros(h, -3.5);
  RecordMicros(h, 2.9);  // Rounds down to 2.
  const HistogramData delta = HistogramsSince(before).Get(h);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 2u);
  EXPECT_EQ(delta.buckets[0], 1u);
  EXPECT_EQ(delta.buckets[2], 1u);
}

// The same multiset of values split across 1, 2, and 8 threads must
// merge to a bitwise-identical histogram: slabs are summed with unsigned
// addition, which is order-independent.
HistogramData RecordAcrossThreads(size_t num_threads) {
  const Histogram h = Histogram::kServeBatchOccupancy;
  const HistogramSnapshot before = SnapshotHistograms();
  std::vector<std::thread> workers;
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([t, num_threads, h] {
      for (size_t i = t; i < 1000; i += num_threads) {
        RecordValue(h, (i * 37) % 257);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return HistogramsSince(before).Get(h);
}

TEST(HistogramTest, MergeIsIdenticalAtOneTwoAndEightThreads) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  const HistogramData serial = RecordAcrossThreads(1);
  EXPECT_EQ(serial.count, 1000u);
  for (const size_t threads : {2u, 8u}) {
    const HistogramData pooled = RecordAcrossThreads(threads);
    EXPECT_EQ(pooled.count, serial.count);
    EXPECT_EQ(pooled.sum, serial.sum);
    EXPECT_EQ(pooled.buckets, serial.buckets);
  }
}

TEST(HistogramTest, GaugeDeltasAreCommutative) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  const Gauge g = Gauge::kServeQueueDepth;
  const int64_t start = GaugeValue(g);
  GaugeAdd(g, 5);
  GaugeAdd(g, -2);
  EXPECT_EQ(GaugeValue(g), start + 3);
  EXPECT_EQ(SnapshotGauges().Get(g), start + 3);
  GaugeAdd(g, -3);  // Settle back so later tests see the original level.
  EXPECT_EQ(GaugeValue(g), start);
}

TEST(HistogramTest, OffBuildRecordsNothing) {
  if (kProfilingEnabled) GTEST_SKIP() << "needs WARP_PROFILE=OFF";
  const HistogramSnapshot before = SnapshotHistograms();
  RecordValue(Histogram::kServeCellsPerQuery, 42);
  GaugeAdd(Gauge::kServeQueueDepth, 7);
  EXPECT_TRUE(HistogramsSince(before).AllEmpty());
  EXPECT_EQ(GaugeValue(Gauge::kServeQueueDepth), 0);
  EXPECT_EQ(SnapshotGauges().Get(Gauge::kServeQueueDepth), 0);
}

}  // namespace
}  // namespace obs
}  // namespace warp
