#ifndef WRONG_GUARD_NAME_H_
#define WRONG_GUARD_NAME_H_

namespace warp {
inline int Misnamed() { return 2; }
}  // namespace warp

#endif  // WRONG_GUARD_NAME_H_
