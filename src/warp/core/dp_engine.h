// The one banded two-row DP engine behind every elastic measure.
//
// Each elastic kernel in this library — full/banded/abandoning/pruned DTW,
// WDTW, ADTW, DDTW, LCSS, ERP, MSM, subsequence DTW, and both FastDTW
// base cases — is the same machine-sympathetic inner loop wearing a
// different local-cost recurrence. This header factors that loop out once
// and expresses every kernel as a policy bundle over it:
//
//   * RowRange   — which columns row i visits (full, Sakoe–Chiba band,
//                  square band, arbitrary WarpingWindow).
//   * Policy     — the recurrence itself: top-row boundary, per-row left
//                  boundary, the cell combination, and the final readout.
//   * Pruner     — optional PrunedDTW column pruning (dp::BandPruner) or
//                  none (dp::NoPruner).
//   * kAbandoning — compile-time early-abandon row-minimum hook.
//
// The engine owns the correctness-critical details the hand-rolled copies
// used to each maintain separately: the +1 column offset (index j+1 holds
// D(i, j); index 0 is the virtual D(i, -1)), the carried left/diag
// scalars that keep the serial dependency in registers, and the
// stale-row-tail reset when the explored range narrows between rows
// (tests/core/dp_engine_test.cc pins that reset).
//
// Scratch rows live in a DtwWorkspace. Reusing one across calls makes the
// steady state allocation-free; every (re)allocation bumps the
// `workspace_allocs` counter so tests and bench reports can prove it.
//
// A second, materialized engine (dp::MaterializedDp) backs the
// path-recovering variants: it fills the window's cells, then walks back
// from the anchor along minimal predecessors under a pluggable tie order
// (diagonal-preferring for this library's kernels, up/left/diagonal for
// the reference FastDTW port) and anchor rule (both corners, or the free
// start/end rows of subsequence DTW).

#ifndef WARP_CORE_DP_ENGINE_H_
#define WARP_CORE_DP_ENGINE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "warp/common/assert.h"
#include "warp/core/warping_path.h"
#include "warp/core/window.h"
#include "warp/common/metrics.h"
#include "warp/simd/dispatch.h"
#include "warp/simd/dp_simd.h"
#include "warp/ts/multi_series.h"

namespace warp {

// Reusable scratch rows for the two-row engine. Passing the same
// workspace across calls in a tight loop makes the steady state
// allocation-free: PrepareRows only touches the allocator when the
// requested width exceeds what the workspace already owns, and each such
// growth bumps obs::Counter::kWorkspaceAllocs.
struct DtwWorkspace {
  std::vector<double> prev;
  std::vector<double> cur;

  // Wavefront scratch (dp::TryWavefront): three rotating anti-diagonal
  // buffers plus padded copies of x and reversed y, all padded by
  // simd::kWavePad so overhanging vector steps stay in bounds; the top/
  // left gap-prefix arrays are only sized when a policy needs boundary
  // values (ERP).
  std::vector<double> wave_diag[3];
  std::vector<double> wave_x;
  std::vector<double> wave_y_rev;
  std::vector<double> wave_top;
  std::vector<double> wave_left;

  void PrepareRows(size_t cols) {
    if (cols > prev.capacity() || cols > cur.capacity()) {
      WARP_COUNT(obs::Counter::kWorkspaceAllocs);
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    prev.assign(cols, kInf);
    cur.assign(cols, kInf);
  }

  void PrepareWave(size_t rows, size_t cols, bool boundaries) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const size_t diag_len = rows + simd::kWavePad;
    const size_t y_len = cols + simd::kWavePad;
    bool grows = diag_len > wave_diag[0].capacity() ||
                 diag_len > wave_diag[1].capacity() ||
                 diag_len > wave_diag[2].capacity() ||
                 diag_len > wave_x.capacity() || y_len > wave_y_rev.capacity();
    if (boundaries) {
      grows = grows || cols > wave_top.capacity() ||
              rows > wave_left.capacity();
    }
    if (grows) WARP_COUNT(obs::Counter::kWorkspaceAllocs);
    for (std::vector<double>& d : wave_diag) d.assign(diag_len, kInf);
    wave_x.assign(diag_len, 0.0);
    wave_y_rev.assign(y_len, 0.0);
    if (boundaries) {
      wave_top.assign(cols, 0.0);
      wave_left.assign(rows, 0.0);
    }
  }
};

namespace dp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

// Sentinel for "do not publish this count to the obs registry". Kernels
// with their own counters (DTW, PrunedDTW) pass real counter ids; the
// measures that never counted (WDTW, ADTW, LCSS, ERP, MSM) pass this.
inline constexpr obs::Counter kNoCounter = obs::Counter::kNumCounters;

inline void CountMaybe(obs::Counter counter, uint64_t amount) {
  if (counter != kNoCounter) WARP_COUNT_ADD(counter, amount);
}

// Where the engine publishes its work. `cells` is added on every exit
// path (success, abandon, prune failure); `abandons` on an early abandon;
// `skipped` holds the pruner's untouched band cells. `cells_out` is an
// optional per-call sink independent of the registry.
struct EngineCounters {
  obs::Counter cells = kNoCounter;
  obs::Counter abandons = kNoCounter;
  obs::Counter skipped = kNoCounter;
  uint64_t* cells_out = nullptr;
};

// ---------------------------------------------------------------------------
// Row ranges. Each yields the inclusive column range of row i and must
// satisfy the WarpingWindow invariants (monotone ranges, reachable,
// corners included).

// Every row visits every column.
struct FullRowRange {
  size_t last_col;
  std::pair<uint32_t, uint32_t> operator()(size_t) const {
    return {0, static_cast<uint32_t>(last_col)};
  }
};

// Equal-length Sakoe–Chiba band: pure integer clamping, no rounding. The
// all-pairs experiments hit this path, so it matters that it is
// branch-lean.
struct SquareBandRowRange {
  size_t band;
  size_t last_col;
  std::pair<uint32_t, uint32_t> operator()(size_t i) const {
    const size_t lo = i > band ? i - band : 0;
    const size_t hi = i + band < last_col ? i + band : last_col;
    return {static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)};
  }
};

// Sakoe–Chiba per-row range, generalized to unequal lengths by centering
// the band on the scaled diagonal. The `lo(i+1) - 1` patch widens hi just
// enough to keep consecutive rows connected when the diagonal advances by
// more than one column per row; this reproduces exactly what
// WarpingWindow::SakoeChiba + Canonicalize produce, without materializing
// the window.
struct BandRowRange {
  size_t n;
  int64_t last_col;
  int64_t band;
  double slope;

  int64_t LoAt(size_t i) const {
    const int64_t center =
        static_cast<int64_t>(std::llround(static_cast<double>(i) * slope));
    return std::clamp<int64_t>(center - band, 0, last_col);
  }

  std::pair<uint32_t, uint32_t> operator()(size_t i) const {
    const int64_t center =
        static_cast<int64_t>(std::llround(static_cast<double>(i) * slope));
    const int64_t lo = std::clamp<int64_t>(center - band, 0, last_col);
    int64_t hi = std::clamp<int64_t>(center + band, 0, last_col);
    if (i + 1 < n) {
      const int64_t next_lo = LoAt(i + 1);
      if (next_lo - 1 > hi) hi = next_lo - 1;
    } else {
      hi = last_col;
    }
    return {static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)};
  }
};

inline BandRowRange MakeBandRowRange(size_t n, size_t m, size_t band) {
  BandRowRange range;
  range.n = n;
  range.last_col = static_cast<int64_t>(m) - 1;
  range.band = static_cast<int64_t>(band);
  range.slope = n > 1 ? static_cast<double>(m - 1) / static_cast<double>(n - 1)
                      : 0.0;
  return range;
}

struct WindowRowRange {
  const WarpingWindow* window;
  std::pair<uint32_t, uint32_t> operator()(size_t i) const {
    const WarpingWindow::ColRange& r = window->range(i);
    return {r.lo, r.hi};
  }
};

// ---------------------------------------------------------------------------
// Cell costs.

// 1-D local cost bound to two spans.
template <typename Cost>
struct SeriesCellCost {
  const double* x;
  const double* y;
  Cost cost;
  double operator()(size_t i, size_t j) const { return cost(x[i], y[j]); }
};

// Multichannel (dependent) local cost: sum of per-channel costs.
template <typename Cost>
struct MultiCellCost {
  const MultiSeries* x;
  const MultiSeries* y;
  Cost cost;
  double operator()(size_t i, size_t j) const {
    double sum = 0.0;
    for (size_t c = 0; c < x->num_channels(); ++c) {
      sum += cost(x->at(c, i), y->at(c, j));
    }
    return sum;
  }
};

// ---------------------------------------------------------------------------
// Recurrence policies. The engine calls, in order:
//   InitTopRow(top, m)  — once; writes the virtual row -1 over a kInf-
//                         filled array of m+1 slots (slot j+1 = D(-1, j),
//                         slot 0 = D(-1, -1)).
//   LeftBoundary(i)     — once per row whose range starts at column 0;
//                         the value of the virtual D(i, -1). May mutate
//                         policy state (ERP accumulates its gap prefix).
//   Cell(i, j, diag, up, left) — the recurrence; diag = D(i-1, j-1),
//                         up = D(i-1, j), left = D(i, j-1).
//   Finish(row, m)      — once; reads the answer out of the final row.

// Classic DTW recurrence: min(diag, up, left) + cost(i, j).
template <typename CellCostFn>
struct MinPlusPolicy {
  CellCostFn cost;

  void InitTopRow(double* top, size_t /*m*/) { top[0] = 0.0; }
  double LeftBoundary(size_t /*i*/) const { return kInf; }
  double Cell(size_t i, size_t j, double diag, double up, double left) const {
    double best = diag;
    if (up < best) best = up;
    if (left < best) best = left;
    return best + cost(i, j);
  }
  double Finish(const double* row, size_t m) const { return row[m]; }
};

// ADTW (Herrmann & Webb, 2023): the amercement `omega` is charged on the
// two non-diagonal predecessors before the minimum is taken.
template <typename CellCostFn>
struct AdtwPolicy {
  CellCostFn cost;
  double omega;

  void InitTopRow(double* top, size_t /*m*/) { top[0] = 0.0; }
  double LeftBoundary(size_t /*i*/) const { return kInf; }
  double Cell(size_t i, size_t j, double diag, double up, double left) const {
    double best = diag;                            // Diagonal: no penalty.
    if (up + omega < best) best = up + omega;      // Stretch x.
    if (left + omega < best) best = left + omega;  // Stretch y.
    return best + cost(i, j);
  }
  double Finish(const double* row, size_t m) const { return row[m]; }
};

// Subsequence DTW distance (Müller): free start — every column of the
// virtual top row costs 0, so row 0 pays only its own cell — and free
// end — the answer is the cheapest cell of the last row.
template <typename CellCostFn>
struct FreeEndsMinPlusPolicy {
  CellCostFn cost;

  void InitTopRow(double* top, size_t m) { std::fill_n(top, m + 1, 0.0); }
  double LeftBoundary(size_t /*i*/) const { return kInf; }
  double Cell(size_t i, size_t j, double diag, double up, double left) const {
    double best = diag;
    if (up < best) best = up;
    if (left < best) best = left;
    return best + cost(i, j);
  }
  double Finish(const double* row, size_t m) const {
    double best = row[1];
    for (size_t j = 2; j <= m; ++j) {
      if (row[j] < best) best = row[j];
    }
    return best;
  }
};

// ERP (Chen & Ng, 2004): L1 edit distance with gaps charged against a
// fixed reference value. Both boundaries are gap prefix sums; the left
// boundary accumulates across rows, which is why this policy is stateful
// and the engine takes policies by non-const reference.
struct ErpPolicy {
  const double* x;
  const double* y;
  double gap;
  double left_acc = 0.0;  // D(i, -1): everything in x[0..i] gapped.

  void InitTopRow(double* top, size_t m) {
    top[0] = 0.0;
    for (size_t j = 0; j < m; ++j) {
      top[j + 1] = top[j] + std::fabs(y[j] - gap);
    }
  }
  double LeftBoundary(size_t i) {
    left_acc += std::fabs(x[i] - gap);
    return left_acc;
  }
  double Cell(size_t i, size_t j, double diag, double up, double left) const {
    const double match = diag + std::fabs(x[i] - y[j]);
    const double gap_x = up + std::fabs(x[i] - gap);
    const double gap_y = left + std::fabs(y[j] - gap);
    return std::min({match, gap_x, gap_y});
  }
  double Finish(const double* row, size_t m) const { return row[m]; }
};

// LCSS (Vlachos et al., 2002) as a max-DP over match counts. Counts are
// small non-negative integers, exact in double; the caller casts the
// result back to size_t. Matches are only allowed inside the band,
// carries are free — so the band gates the match case inside Cell rather
// than narrowing the row range.
struct LcssPolicy {
  const double* x;
  const double* y;
  double epsilon;
  size_t band;

  void InitTopRow(double* top, size_t m) { std::fill_n(top, m + 1, 0.0); }
  double LeftBoundary(size_t /*i*/) const { return 0.0; }
  double Cell(size_t i, size_t j, double diag, double up, double left) const {
    const size_t dev = i > j ? i - j : j - i;
    if (dev <= band && std::fabs(x[i] - y[j]) <= epsilon) {
      return diag + 1.0;
    }
    return std::max(up, left);
  }
  double Finish(const double* row, size_t m) const { return row[m]; }
};

// MSM (Stefan, Athitsos & Das, 2013). The first row and column have their
// own recurrences (there is no virtual row/column in the classical
// formulation), so Cell dispatches on i == 0 / j == 0 and ignores the
// unreachable predecessors.
struct MsmPolicy {
  const double* x;
  const double* y;
  double c;

  // MSM's split/merge cost: moving `value` next to `adjacent` when the
  // opposite series sits at `opposite`. Free-of-extras (just c) when
  // value lies between them, otherwise c plus the distance to the nearer.
  double MoveCost(double value, double adjacent, double opposite) const {
    if ((adjacent <= value && value <= opposite) ||
        (adjacent >= value && value >= opposite)) {
      return c;
    }
    return c + std::min(std::fabs(value - adjacent),
                        std::fabs(value - opposite));
  }

  void InitTopRow(double* /*top*/, size_t /*m*/) {}  // Row 0 ignores it.
  double LeftBoundary(size_t /*i*/) const { return kInf; }
  double Cell(size_t i, size_t j, double diag, double up, double left) const {
    if (i == 0) {
      if (j == 0) return std::fabs(x[0] - y[0]);
      return left + MoveCost(y[j], y[j - 1], x[0]);
    }
    if (j == 0) return up + MoveCost(x[i], x[i - 1], y[0]);
    const double match = diag + std::fabs(x[i] - y[j]);
    const double split_x = up + MoveCost(x[i], x[i - 1], y[j]);
    const double merge_y = left + MoveCost(y[j], y[j - 1], x[i]);
    return std::min({match, split_x, merge_y});
  }
  double Finish(const double* row, size_t m) const { return row[m]; }
};

// ---------------------------------------------------------------------------
// Pruners.

struct NoPruner {
  static constexpr bool kEnabled = false;
};

// PrunedDTW (Silva & Batista, SDM 2016) column pruning against an
// admissible upper bound: cells provably not on any path cheaper than
// `ub` are skipped. sc is the first column of the previous row whose
// value stayed <= ub (no cheaper-than-ub path enters this row left of
// it); `limit` is one past the previous row's last under-bound column —
// beyond it cells are reachable only through a live horizontal chain.
struct BandPruner {
  static constexpr bool kEnabled = true;

  double ub;
  size_t sc = 0;
  size_t prev_last_under;  // Row -1 imposes no limit on row 0.
  size_t limit = 0;
  bool found = false;
  size_t first_under = 0;
  size_t last_under = 0;

  BandPruner(double upper_bound, size_t m)
      : ub(upper_bound), prev_last_under(m) {}

  size_t RowBegin(size_t i, size_t band_lo, size_t band_hi) {
    limit = i == 0 ? band_hi : std::min(band_hi, prev_last_under + 1);
    found = false;
    return std::max(band_lo, sc);
  }
  bool ShouldStop(size_t j, double left) const {
    return j > limit && left > ub;  // Nothing can reach further.
  }
  void Observe(size_t j, double value) {
    if (value <= ub) {
      if (!found) {
        first_under = j;
        found = true;
      }
      last_under = j;
    }
  }
  // False when no cell of the row stayed under the bound — cannot happen
  // when ub really upper-bounds the optimum (the optimal path crosses
  // every row with prefix <= ub); defends against a caller-supplied bound
  // that was too tight.
  bool RowFinished() {
    if (!found) return false;
    sc = first_under;
    prev_last_under = last_under;
    return true;
  }
};

// ---------------------------------------------------------------------------
// SIMD wavefront eligibility.
//
// A policy is wavefront-eligible when its recurrence vectorizes across an
// anti-diagonal with exactly the scalar per-cell operations (bitwise
// contract, see warp/simd/dp_simd.h): the plain min-plus family over a
// 1-D series cost (DTW/cDTW/DDTW), its amerced variant (ADTW), and ERP.
// Everything else — WDTW's per-cell weight lookup, LCSS's band-gated max,
// MSM's three-way move costs, multichannel costs, free-ends reads of the
// whole last row — keeps the row engine.

template <typename Policy>
struct WaveSpec {
  static constexpr bool kEligible = false;
};

template <typename Cost>
struct WaveSpec<MinPlusPolicy<SeriesCellCost<Cost>>> {
  static constexpr bool kEligible = true;
  static constexpr bool kErp = false;
  static constexpr bool kAmerced = false;
  using CostFn = Cost;
  static const double* X(const MinPlusPolicy<SeriesCellCost<Cost>>& p) {
    return p.cost.x;
  }
  static const double* Y(const MinPlusPolicy<SeriesCellCost<Cost>>& p) {
    return p.cost.y;
  }
  static double Omega(const MinPlusPolicy<SeriesCellCost<Cost>>&) {
    return 0.0;
  }
};

template <typename Cost>
struct WaveSpec<AdtwPolicy<SeriesCellCost<Cost>>> {
  static constexpr bool kEligible = true;
  static constexpr bool kErp = false;
  static constexpr bool kAmerced = true;
  using CostFn = Cost;
  static const double* X(const AdtwPolicy<SeriesCellCost<Cost>>& p) {
    return p.cost.x;
  }
  static const double* Y(const AdtwPolicy<SeriesCellCost<Cost>>& p) {
    return p.cost.y;
  }
  static double Omega(const AdtwPolicy<SeriesCellCost<Cost>>& p) {
    return p.omega;
  }
};

template <>
struct WaveSpec<ErpPolicy> {
  static constexpr bool kEligible = true;
  static constexpr bool kErp = true;
  static const double* X(const ErpPolicy& p) { return p.x; }
  static const double* Y(const ErpPolicy& p) { return p.y; }
};

// Runs the wavefront sweep instead of the row engine when the policy,
// geometry, and runtime dispatch all allow it. Returns true (result in
// *result) on success; false means "use the row engine" and touches
// nothing. Geometry: a square Sakoe–Chiba band (n == m, any band), or
// unequal lengths with a band wide enough that every row is full
// (BandRowRange degenerates to FullRowRange exactly when band >= m - 1).
// Early abandoning is row-structured (a row minimum is not a diagonal
// minimum), so abandoning calls never come here; pruning likewise.
template <typename Policy>
bool TryWavefront(size_t n, size_t m, size_t band, const Policy& policy,
                  DtwWorkspace* workspace, const EngineCounters& counters,
                  double* result) {
  if constexpr (!WaveSpec<Policy>::kEligible) {
    (void)n;
    (void)m;
    (void)band;
    (void)policy;
    (void)workspace;
    (void)counters;
    (void)result;
    return false;
  } else {
    using Spec = WaveSpec<Policy>;
    if (n == 0 || m == 0) return false;
    size_t width;
    int64_t wave_band;
    if (n == m) {
      width = band < n ? std::min(2 * band + 1, n) : n;
      wave_band = static_cast<int64_t>(std::min(band, 2 * (n + m)));
    } else {
      if (band < m - 1) return false;
      width = std::min(n, m);
      wave_band = static_cast<int64_t>(2 * (n + m));
    }
    if (!simd::WavefrontEligible(width)) return false;

    DtwWorkspace local;
    DtwWorkspace* ws = workspace != nullptr ? workspace : &local;
    ws->PrepareWave(n, m, Spec::kErp);
    const double* x = Spec::X(policy);
    const double* y = Spec::Y(policy);
    double* xp = ws->wave_x.data();
    double* yr = ws->wave_y_rev.data();
    for (size_t i = 0; i < n; ++i) xp[i] = x[i];
    for (size_t k = 0; k < m; ++k) yr[k] = y[m - 1 - k];
    double* b0 = ws->wave_diag[0].data() + 1;
    double* b1 = ws->wave_diag[1].data() + 1;
    double* b2 = ws->wave_diag[2].data() + 1;

    simd::WaveStats stats;
    double value;
    if constexpr (Spec::kErp) {
      // Gap prefixes in exactly ErpPolicy's sequential accumulation
      // order (InitTopRow / LeftBoundary), so the injected boundary
      // values are bitwise the row engine's.
      double* top = ws->wave_top.data();
      double* lft = ws->wave_left.data();
      double acc = 0.0;
      for (size_t j = 0; j < m; ++j) {
        acc += std::fabs(y[j] - policy.gap);
        top[j] = acc;
      }
      acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += std::fabs(x[i] - policy.gap);
        lft[i] = acc;
      }
      value = simd::WaveErp(xp, static_cast<int64_t>(n), yr,
                            static_cast<int64_t>(m), policy.gap, top, lft, b0,
                            b1, b2, &stats);
    } else {
      value = simd::WaveMinPlus<typename Spec::CostFn, Spec::kAmerced>(
          xp, static_cast<int64_t>(n), yr, static_cast<int64_t>(m), wave_band,
          Spec::Omega(policy), b0, b1, b2, &stats);
    }

    // The wavefront visits exactly the row engine's band cells (the same
    // set, enumerated by diagonals instead of rows).
    if (counters.cells_out != nullptr) *counters.cells_out = stats.cells;
    CountMaybe(counters.cells, stats.cells);
    WARP_COUNT_ADD(obs::Counter::kSimdBlocks, stats.blocks);
    WARP_COUNT_ADD(obs::Counter::kSimdScalarTail, stats.tail);
    *result = value;
    return true;
  }
}

// ---------------------------------------------------------------------------
// The distance-only engine.
//
// Rows are visited in order; `row_range(i)` yields the inclusive column
// range of row i. DP arrays use a +1 column offset so that index j+1
// holds D(i, j); index 0 holds the virtual D(i, -1), and the virtual row
// -1 is written by the policy's InitTopRow.
//
// Stale-cell management: explored ranges only move right (between rows
// and, under pruning, within the skipped prefix), so on entry to row i
// the only prev-row indices the row can read that were not freshly
// written are those above the previous row's explored hi + 1; they are
// re-set to inf first. The engine owns this reset — the hand-rolled
// kernels used to each maintain their own copy, and wdtw.cc's was the
// template for the regression test that now pins it.
template <bool kAbandoning, typename RowRangeFn, typename Policy,
          typename Pruner>
double TwoRowEngineImpl(size_t n, size_t m, RowRangeFn&& row_range,
                        Policy& policy, Pruner& pruner, double abandon_above,
                        DtwWorkspace* workspace,
                        const EngineCounters& counters) {
  WARP_CHECK(n > 0 && m > 0);
  DtwWorkspace local;
  DtwWorkspace* ws = workspace != nullptr ? workspace : &local;
  ws->PrepareRows(m + 1);
  double* prev = ws->prev.data();
  double* cur = ws->cur.data();
  policy.InitTopRow(prev, m);

  size_t prev_hi = m;  // prev[] is fully initialized before row 0.
  uint64_t visited = 0;
  uint64_t skipped = 0;  // Band cells pruning never touched.
  const auto report = [&] {
    if (counters.cells_out != nullptr) *counters.cells_out = visited;
    CountMaybe(counters.cells, visited);
    if constexpr (Pruner::kEnabled) CountMaybe(counters.skipped, skipped);
  };

  for (size_t i = 0; i < n; ++i) {
    const auto [lo32, hi32] = row_range(i);
    const size_t band_lo = lo32;
    const size_t hi = hi32;
    WARP_DCHECK(band_lo <= hi && hi < m);
    for (size_t k = prev_hi + 2; k <= hi + 1; ++k) prev[k] = kInf;
    size_t lo = band_lo;
    if constexpr (Pruner::kEnabled) lo = pruner.RowBegin(i, band_lo, hi);
    // Virtual D(i, lo-1): the policy's left boundary when the row starts
    // at column 0 (row i+1 may read this slot as its diagonal
    // predecessor), unreachable otherwise.
    const double boundary = lo == 0 ? policy.LeftBoundary(i) : kInf;
    cur[lo] = boundary;

    // The carried scalars keep the recurrence's serial dependency in
    // registers: `left` is D(i, j-1), `diag` is D(i-1, j-1); prev[] is
    // only read once per cell and cur[] only written.
    const double* __restrict prev_row = prev;
    double* __restrict cur_row = cur;
    double left = boundary;
    double diag = prev_row[lo];
    double row_min = kInf;
    size_t j = lo;
    for (; j <= hi; ++j) {
      if constexpr (Pruner::kEnabled) {
        if (pruner.ShouldStop(j, left)) break;
      }
      const double up = prev_row[j + 1];  // D(i-1, j)
      const double value = policy.Cell(i, j, diag, up, left);
      cur_row[j + 1] = value;
      left = value;
      diag = up;
      if constexpr (Pruner::kEnabled) pruner.Observe(j, value);
      if constexpr (kAbandoning) {
        if (value < row_min) row_min = value;
      }
    }
    visited += j - lo;
    if constexpr (Pruner::kEnabled) {
      skipped += (hi - band_lo + 1) - (j - lo);
      if (!pruner.RowFinished()) {
        report();
        return kInf;
      }
    }
    if constexpr (kAbandoning) {
      if (row_min > abandon_above) {
        report();
        CountMaybe(counters.abandons, 1);
        return kInf;
      }
    }
    std::swap(prev, cur);
    prev_hi = j > lo ? j - 1 : lo;
  }
  if constexpr (Pruner::kEnabled) {
    // A pruned final row that never reached the corner cannot answer;
    // mirrors the defensive RowFinished return above.
    if (prev_hi < m - 1) {
      report();
      return kInf;
    }
  }
  report();
  return policy.Finish(prev, m);
}

// Dispatches the abandon hook at compile time so the common
// non-abandoning path carries no per-cell branch.
template <typename RowRangeFn, typename Policy, typename Pruner = NoPruner>
double TwoRowEngine(size_t n, size_t m, RowRangeFn&& row_range, Policy policy,
                    double abandon_above = kInf,
                    DtwWorkspace* workspace = nullptr,
                    const EngineCounters& counters = {},
                    Pruner pruner = {}) {
  if (abandon_above == kInf) {
    return TwoRowEngineImpl<false>(n, m, row_range, policy, pruner,
                                   abandon_above, workspace, counters);
  }
  return TwoRowEngineImpl<true>(n, m, row_range, policy, pruner,
                                abandon_above, workspace, counters);
}

// Routes to the integer fast path when the band is square (n == m); the
// generalized scaled-diagonal range produces identical ranges there, just
// with more arithmetic per row.
template <typename Policy>
double BandedTwoRowEngine(size_t n, size_t m, size_t band, Policy policy,
                          double abandon_above = kInf,
                          DtwWorkspace* workspace = nullptr,
                          const EngineCounters& counters = {}) {
  if (abandon_above == kInf) {
    double wave_result;
    if (TryWavefront(n, m, band, policy, workspace, counters, &wave_result)) {
      return wave_result;
    }
  }
  if (n == m) {
    return TwoRowEngine(n, m, SquareBandRowRange{band, m - 1},
                        std::move(policy), abandon_above, workspace, counters);
  }
  return TwoRowEngine(n, m, MakeBandRowRange(n, m, band), std::move(policy),
                      abandon_above, workspace, counters);
}

// ---------------------------------------------------------------------------
// The materialized (path-recovering) engine.
//
// Fills the cumulative-cost value of every window cell (flattened
// row-major with per-row offsets), then walks back from the anchor along
// minimal predecessors.

// Traceback tie orders. Candidates are probed in the policy's order; the
// first available candidate seeds the choice and later ones must be
// strictly smaller to replace it — exactly the first-minimal-candidate
// rule both ported implementations use.
enum class Move : int { kDiag = 0, kUp = 1, kLeft = 2 };

// This library's order: diagonal, up, left — ties prefer the diagonal
// step, which yields the shortest optimal path.
struct PreferDiagonalTie {
  static constexpr Move kOrder[3] = {Move::kDiag, Move::kUp, Move::kLeft};
};

// The reference fastdtw package's order: up, left, diagonal (the first
// minimal candidate of its min() over candidate tuples).
struct ReferenceTie {
  static constexpr Move kOrder[3] = {Move::kUp, Move::kLeft, Move::kDiag};
};

// Anchor rules.
struct CornerAnchors {
  // Paths run (0, 0) .. (n-1, m-1).
  static constexpr bool kFreeEnds = false;
};
struct FreeEndsAnchors {
  // Subsequence DTW: the path may start at any column of row 0 and end at
  // any column of row n-1; the end is the cheapest last-row cell (first
  // minimum wins) and traceback stops on reaching row 0.
  static constexpr bool kFreeEnds = true;
};

struct MaterializedResult {
  double distance = 0.0;
  std::vector<PathPoint> path;
  uint64_t cells_visited = 0;
  size_t end_col = 0;  // FreeEndsAnchors: the chosen last-row column.
};

template <typename Tie = PreferDiagonalTie, typename Anchors = CornerAnchors,
          typename CellCostFn>
MaterializedResult MaterializedDp(size_t n, size_t m,
                                  const WarpingWindow& window,
                                  CellCostFn&& cell_cost,
                                  obs::Counter cells_counter = kNoCounter,
                                  obs::Counter bytes_counter = kNoCounter) {
  WARP_CHECK(window.rows() == n && window.cols() == m);
  std::string error;
  WARP_CHECK_MSG(window.Validate(&error), error.c_str());

  std::vector<uint64_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto& r = window.range(i);
    offsets[i + 1] = offsets[i] + (r.hi - r.lo + 1);
  }
  std::vector<double> cumulative(offsets[n]);
  CountMaybe(cells_counter, offsets[n]);
  CountMaybe(bytes_counter,
             offsets[n] * sizeof(double) + (n + 1) * sizeof(uint64_t));

  auto value_at = [&](size_t i, size_t j) -> double {
    const auto& r = window.range(i);
    if (j < r.lo || j > r.hi) return kInf;
    return cumulative[offsets[i] + (j - r.lo)];
  };

  for (size_t i = 0; i < n; ++i) {
    const auto& r = window.range(i);
    for (size_t j = r.lo; j <= r.hi; ++j) {
      double best;
      const bool anchored =
          Anchors::kFreeEnds ? i == 0 : (i == 0 && j == 0);
      if (anchored) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0 && j > 0) best = value_at(i - 1, j - 1);
        if (i > 0) best = std::min(best, value_at(i - 1, j));
        if (j > 0) best = std::min(best, value_at(i, j - 1));
      }
      cumulative[offsets[i] + (j - r.lo)] = best + cell_cost(i, j);
    }
  }

  MaterializedResult result;
  result.cells_visited = offsets[n];
  size_t end = m - 1;
  if constexpr (Anchors::kFreeEnds) {
    double best = kInf;
    end = 0;
    for (size_t j = 0; j < m; ++j) {
      const double v = value_at(n - 1, j);
      if (v < best) {
        best = v;
        end = j;
      }
    }
    result.distance = best;
  } else {
    result.distance = value_at(n - 1, m - 1);
  }
  result.end_col = end;
  WARP_CHECK_MSG(std::isfinite(result.distance),
                 "window admits no complete warping path");

  // Traceback by value: cumulative values are immutable once written, so
  // re-deriving each step's first-minimal predecessor reproduces exactly
  // the parent a forward pointer would have recorded.
  size_t i = n - 1;
  size_t j = end;
  result.path.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
  auto done = [&] {
    return Anchors::kFreeEnds ? i == 0 : (i == 0 && j == 0);
  };
  while (!done()) {
    double best = kInf;
    int move = -1;
    for (const Move cand : Tie::kOrder) {
      const bool available = cand == Move::kDiag ? (i > 0 && j > 0)
                             : cand == Move::kUp ? i > 0
                                                 : j > 0;
      if (!available) continue;
      const double v = cand == Move::kDiag ? value_at(i - 1, j - 1)
                       : cand == Move::kUp ? value_at(i - 1, j)
                                           : value_at(i, j - 1);
      if (move < 0 || v < best) {
        best = v;
        move = static_cast<int>(cand);
      }
    }
    WARP_CHECK_MSG(move >= 0 && std::isfinite(best),
                   "traceback hit an unreachable cell");
    if (move == static_cast<int>(Move::kDiag)) {
      --i;
      --j;
    } else if (move == static_cast<int>(Move::kUp)) {
      --i;
    } else {
      --j;
    }
    result.path.push_back(
        {static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

}  // namespace dp
}  // namespace warp

#endif  // WARP_CORE_DP_ENGINE_H_
