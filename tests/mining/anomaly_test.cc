// Unit tests for discord discovery.

#include "warp/mining/anomaly.h"

#include <cmath>

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

// A long sine with one corrupted cycle: the planted anomaly.
std::vector<double> SineWithAnomaly(size_t n, size_t anomaly_at,
                                    size_t anomaly_len) {
  std::vector<double> series(n);
  for (size_t t = 0; t < n; ++t) {
    series[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 50.0);
  }
  for (size_t t = anomaly_at; t < anomaly_at + anomaly_len && t < n; ++t) {
    // Flatten + spike: a shape no other window has.
    series[t] = (t % 7 == 0) ? 2.5 : 0.1;
  }
  return series;
}

TEST(DiscordTest, FindsPlantedAnomalyUnderEuclidean) {
  const size_t m = 50;
  const std::vector<double> series = SineWithAnomaly(1200, 600, 50);
  const Discord discord = FindTopDiscord(series, m, /*band=*/0);
  // The discord window must overlap the planted anomaly.
  EXPECT_GE(discord.position + m, 600u);
  EXPECT_LE(discord.position, 650u);
  EXPECT_GT(discord.nn_distance, 0.0);
}

TEST(DiscordTest, FindsPlantedAnomalyUnderCdtw) {
  const size_t m = 50;
  const std::vector<double> series = SineWithAnomaly(800, 400, 50);
  const Discord discord = FindTopDiscord(series, m, /*band=*/5);
  EXPECT_GE(discord.position + m, 400u);
  EXPECT_LE(discord.position, 450u);
}

TEST(DiscordTest, PureSineHasLowDiscordScore) {
  // No anomaly: the best discord's NN distance should be near zero
  // (every cycle has many near-identical copies).
  std::vector<double> series(1000);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 50.0);
  }
  const Discord clean = FindTopDiscord(series, 50, 0);
  const Discord planted =
      FindTopDiscord(SineWithAnomaly(1000, 500, 50), 50, 0);
  EXPECT_LT(clean.nn_distance, planted.nn_distance * 0.2);
}

TEST(DiscordTest, SelfMatchesAreExcluded) {
  const std::vector<double> series = SineWithAnomaly(600, 300, 50);
  const size_t m = 60;
  const Discord discord = FindTopDiscord(series, m, 0);
  const size_t gap = discord.position > discord.nn_position
                         ? discord.position - discord.nn_position
                         : discord.nn_position - discord.position;
  EXPECT_GE(gap, m);
}

TEST(DiscordTest, PruningDoesNotChangeTheAnswer) {
  Rng rng(161);
  std::vector<double> series = gen::RandomWalk(500, rng);
  const size_t m = 40;

  DiscordStats stats;
  const Discord pruned = FindTopDiscord(series, m, 3, CostKind::kSquared, 1,
                                        &stats);
  // Pruning fired...
  EXPECT_GT(stats.abandoned_candidates, 0u);

  // ...and a stride-1 run without observing stats yields the same discord
  // as an exhaustive check of the found candidate's neighborhood: verify
  // its NN distance directly.
  double nn = 1e300;
  const auto window_at = [&](size_t pos) {
    return std::vector<double>(series.begin() + pos,
                               series.begin() + pos + m);
  };
  std::vector<double> discord_window = window_at(pruned.position);
  ZNormalizeInPlace(discord_window);
  for (size_t pos = 0; pos + m <= series.size(); ++pos) {
    const size_t gap = pos > pruned.position ? pos - pruned.position
                                             : pruned.position - pos;
    if (gap < m) continue;
    std::vector<double> other = window_at(pos);
    ZNormalizeInPlace(other);
    nn = std::min(nn, CdtwDistance(discord_window, other, 3));
  }
  EXPECT_NEAR(nn, pruned.nn_distance, 1e-9);
}

TEST(MotifTest, FindsPlantedRepeatedPattern) {
  // Noise with the same distinctive shape planted twice.
  Rng rng(162);
  std::vector<double> series = gen::RandomWalk(1000, rng);
  std::vector<double> pattern(60);
  for (size_t t = 0; t < pattern.size(); ++t) {
    pattern[t] = 4.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 20.0);
  }
  for (size_t k = 0; k < pattern.size(); ++k) {
    series[200 + k] = pattern[k];
    series[700 + k] = pattern[k] * 1.5 + 3.0;  // Scaled copy.
  }
  const Motif motif = FindTopMotif(series, 60, 3);
  const size_t lo = std::min(motif.position_a, motif.position_b);
  const size_t hi = std::max(motif.position_a, motif.position_b);
  EXPECT_NEAR(static_cast<double>(lo), 200.0, 5.0);
  EXPECT_NEAR(static_cast<double>(hi), 700.0, 5.0);
  EXPECT_NEAR(motif.distance, 0.0, 1e-6);
}

TEST(MotifTest, PairDoesNotOverlap) {
  Rng rng(163);
  const std::vector<double> series = gen::RandomWalk(400, rng);
  const size_t m = 50;
  const Motif motif = FindTopMotif(series, m, 0);
  const size_t gap = motif.position_b > motif.position_a
                         ? motif.position_b - motif.position_a
                         : motif.position_a - motif.position_b;
  EXPECT_GE(gap, m);
}

TEST(MotifTest, MotifDistanceBelowDiscordDistance) {
  // By definition: the closest pair is at most as far apart as the
  // farthest nearest-neighbor.
  Rng rng(164);
  const std::vector<double> series = gen::RandomWalk(500, rng);
  const Motif motif = FindTopMotif(series, 40, 2);
  const Discord discord = FindTopDiscord(series, 40, 2);
  EXPECT_LE(motif.distance, discord.nn_distance + 1e-9);
}

TEST(DiscordTest, StrideSpeedsUpAndApproximates) {
  const std::vector<double> series = SineWithAnomaly(1000, 500, 50);
  DiscordStats exact_stats;
  DiscordStats strided_stats;
  const Discord exact =
      FindTopDiscord(series, 50, 0, CostKind::kSquared, 1, &exact_stats);
  const Discord strided =
      FindTopDiscord(series, 50, 0, CostKind::kSquared, 4, &strided_stats);
  EXPECT_LT(strided_stats.distance_calls, exact_stats.distance_calls);
  // The strided discord must still land on the anomaly.
  EXPECT_GE(strided.position + 50, 500u);
  EXPECT_LE(strided.position, 550u);
  (void)exact;
}

}  // namespace
}  // namespace warp
