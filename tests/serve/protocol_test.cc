// Wire-protocol tests: request-line parsing (valid, malformed, hostile)
// and response formatting, including the double round-trip guarantee the
// loopback golden tests build on.

#include "warp/serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

#include "warp/serve/wire.h"

namespace warp {
namespace serve {
namespace {

TEST(ProtocolTest, ParsesFullQueryLine) {
  ParsedLine parsed;
  std::string error;
  const std::string line =
      R"({"id": 7, "op": "knn", "dataset": "train", "measure": "cdtw",)"
      R"( "window": 0.2, "k": 3, "znorm": false, "deadline_ms": 12.5,)"
      R"( "query": [1.0, 2.5, -3.0]})";
  ASSERT_TRUE(ParseRequestLine(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.control, ControlOp::kNone);
  EXPECT_EQ(parsed.id, 7);
  EXPECT_EQ(parsed.request.id, 7);
  EXPECT_EQ(parsed.request.op, QueryOp::kKnn);
  EXPECT_EQ(parsed.request.dataset, "train");
  EXPECT_EQ(parsed.request.measure, "cdtw");
  EXPECT_EQ(parsed.request.params.window_fraction, 0.2);
  EXPECT_EQ(parsed.request.k, 3u);
  EXPECT_FALSE(parsed.request.znormalize);
  EXPECT_EQ(parsed.request.deadline_ms, 12.5);
  EXPECT_EQ(parsed.request.query, (std::vector<double>{1.0, 2.5, -3.0}));
}

TEST(ProtocolTest, DefaultsMatchServeRequestDefaults) {
  ParsedLine parsed;
  std::string error;
  ASSERT_TRUE(ParseRequestLine(
      R"({"op": "1nn", "dataset": "d", "query": [0.0, 1.0]})", &parsed,
      &error))
      << error;
  const ServeRequest defaults;
  EXPECT_EQ(parsed.request.measure, defaults.measure);
  EXPECT_EQ(parsed.request.params.window_fraction,
            defaults.params.window_fraction);
  EXPECT_EQ(parsed.request.k, defaults.k);
  EXPECT_EQ(parsed.request.znormalize, defaults.znormalize);
  EXPECT_EQ(parsed.request.deadline_ms, defaults.deadline_ms);
}

TEST(ProtocolTest, ParsesBandAsExplicitCellCount) {
  ParsedLine parsed;
  std::string error;
  ASSERT_TRUE(ParseRequestLine(
      R"({"op": "1nn", "dataset": "d", "band": 5, "query": [0.0]})", &parsed,
      &error))
      << error;
  EXPECT_EQ(parsed.request.params.band_cells, 5);
}

TEST(ProtocolTest, ParsesControlOps) {
  ParsedLine parsed;
  std::string error;
  ASSERT_TRUE(ParseRequestLine(R"({"id": 1, "op": "ping"})", &parsed, &error));
  EXPECT_EQ(parsed.control, ControlOp::kPing);

  ASSERT_TRUE(ParseRequestLine(R"({"op": "stats"})", &parsed, &error));
  EXPECT_EQ(parsed.control, ControlOp::kStats);

  ASSERT_TRUE(ParseRequestLine(R"({"op": "shutdown"})", &parsed, &error));
  EXPECT_EQ(parsed.control, ControlOp::kShutdown);

  ASSERT_TRUE(ParseRequestLine(R"({"op": "info", "dataset": "d"})", &parsed,
                               &error));
  EXPECT_EQ(parsed.control, ControlOp::kInfo);
  EXPECT_EQ(parsed.dataset, "d");

  ASSERT_TRUE(ParseRequestLine(
      R"({"op": "load", "dataset": "d", "path": "/tmp/x.tsv",)"
      R"( "bands": [0.05, 0.1]})",
      &parsed, &error));
  EXPECT_EQ(parsed.control, ControlOp::kLoad);
  EXPECT_EQ(parsed.path, "/tmp/x.tsv");
  EXPECT_EQ(parsed.band_fractions, (std::vector<double>{0.05, 0.1}));
}

TEST(ProtocolTest, RejectsMalformedLines) {
  ParsedLine parsed;
  std::string error;
  EXPECT_FALSE(ParseRequestLine("not json", &parsed, &error));
  EXPECT_NE(error.find("malformed JSON"), std::string::npos);

  EXPECT_FALSE(ParseRequestLine("[1, 2]", &parsed, &error));
  EXPECT_FALSE(ParseRequestLine(R"({"id": 3})", &parsed, &error));
  EXPECT_NE(error.find("missing 'op'"), std::string::npos);

  EXPECT_FALSE(
      ParseRequestLine(R"({"op": "frobnicate", "dataset": "d"})", &parsed,
                       &error));
  EXPECT_NE(error.find("unknown op"), std::string::npos);
}

TEST(ProtocolTest, ErrorLinesStillCarryTheRequestId) {
  ParsedLine parsed;
  std::string error;
  EXPECT_FALSE(ParseRequestLine(R"({"id": 42, "op": "1nn"})", &parsed,
                                &error));
  EXPECT_EQ(parsed.id, 42);  // So the server can echo it back.
}

TEST(ProtocolTest, RejectsBadQueryFields) {
  ParsedLine parsed;
  std::string error;
  // Query ops need a dataset and a numeric query array.
  EXPECT_FALSE(ParseRequestLine(R"({"op": "1nn", "query": [1.0]})", &parsed,
                                &error));
  EXPECT_FALSE(ParseRequestLine(R"({"op": "1nn", "dataset": "d"})", &parsed,
                                &error));
  EXPECT_FALSE(ParseRequestLine(
      R"({"op": "1nn", "dataset": "d", "query": ["a"]})", &parsed, &error));
  EXPECT_FALSE(ParseRequestLine(
      R"({"op": "1nn", "dataset": "d", "query": [1.0], "k": 1.5})", &parsed,
      &error));
  EXPECT_FALSE(ParseRequestLine(
      R"({"op": "1nn", "dataset": "d", "query": [1.0], "band": -1})", &parsed,
      &error));
  EXPECT_FALSE(ParseRequestLine(
      R"({"op": "1nn", "dataset": "d", "query": [1.0], "cost": "cubic"})",
      &parsed, &error));
  EXPECT_FALSE(ParseRequestLine(
      R"({"op": "load", "dataset": "d", "path": "p", "bands": [-0.1]})",
      &parsed, &error));
}

// The property the result cache and loopback golden tests rely on:
// a distance formatted by FormatResponse re-parses to identical bits.
TEST(ProtocolTest, DoublesSurviveTheWireBitForBit) {
  ServeResponse response;
  response.id = 5;
  response.ok = true;
  response.op = QueryOp::kDist;
  response.scanned = response.total = 1;
  response.distance = 1.0 / 3.0 * 7.000000001;

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(FormatResponse(response), &root, &error)) << error;
  const JsonValue* distance = root.Find("distance");
  ASSERT_NE(distance, nullptr);
  EXPECT_EQ(distance->AsNumber(), response.distance);
}

TEST(ProtocolTest, FormatsNeighborLists) {
  ServeResponse response;
  response.id = 9;
  response.ok = true;
  response.op = QueryOp::kKnn;
  response.scanned = response.total = 10;
  response.neighbors.push_back({3, 1, 0.25});
  response.neighbors.push_back({7, 2, 0.5});

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(FormatResponse(response), &root, &error)) << error;
  EXPECT_EQ(root.NumberOr("id", -1), 9.0);
  EXPECT_TRUE(root.BoolOr("ok", false));
  EXPECT_FALSE(root.BoolOr("partial", true));
  const JsonValue* neighbors = root.Find("neighbors");
  ASSERT_NE(neighbors, nullptr);
  ASSERT_TRUE(neighbors->is_array());
  ASSERT_EQ(neighbors->AsArray().size(), 2u);
  EXPECT_EQ(neighbors->AsArray()[0].NumberOr("index", -1), 3.0);
  EXPECT_EQ(neighbors->AsArray()[1].NumberOr("distance", -1), 0.5);
}

TEST(ProtocolTest, FormatsErrorsWithoutResultFields) {
  ServeResponse response;
  response.id = 2;
  response.ok = false;
  response.error = "unknown dataset: x";

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(FormatResponse(response), &root, &error)) << error;
  EXPECT_FALSE(root.BoolOr("ok", true));
  EXPECT_EQ(root.StringOr("error", ""), "unknown dataset: x");
  EXPECT_EQ(root.Find("neighbors"), nullptr);

  ASSERT_TRUE(ParseJson(FormatErrorLine(11, "nope"), &root, &error)) << error;
  EXPECT_EQ(root.NumberOr("id", -1), 11.0);
  EXPECT_EQ(root.StringOr("error", ""), "nope");
}

TEST(ProtocolTest, QueryOpNamesRoundTrip) {
  for (QueryOp op : {QueryOp::k1Nn, QueryOp::kKnn, QueryOp::kRange,
                     QueryOp::kDist, QueryOp::kSubsequence}) {
    QueryOp parsed = QueryOp::k1Nn;
    ASSERT_TRUE(ParseQueryOp(QueryOpName(op), &parsed));
    EXPECT_EQ(parsed, op);
  }
  QueryOp ignored;
  EXPECT_FALSE(ParseQueryOp("2nn", &ignored));
}

}  // namespace
}  // namespace serve
}  // namespace warp
