#ifndef WARP_OBS_HISTOGRAM_H_
#define WARP_OBS_HISTOGRAM_H_

#include <cstdint>

#include "warp/common/metrics.h"

#define WARP_OBS_HISTOGRAM_LIST(X) \
  X(kRecorded, "recorded_us")      \
  X(kGhostHist, "ghost_us")

#define WARP_OBS_GAUGE_LIST(X) \
  X(kDepth, "depth")           \
  X(kGhostGauge, "ghost_gauge")

namespace warp {
namespace obs {

enum class Histogram : uint32_t {
#define X(name, json_name) name,
  WARP_OBS_HISTOGRAM_LIST(X)
#undef X
      kNumHistograms,
};

enum class Gauge : uint32_t {
#define X(name, json_name) name,
  WARP_OBS_GAUGE_LIST(X)
#undef X
      kNumGauges,
};

void RecordValue(Histogram histogram, uint64_t value);
void GaugeAdd(Gauge gauge, int64_t delta);

}  // namespace obs
}  // namespace warp

#endif  // WARP_OBS_HISTOGRAM_H_
