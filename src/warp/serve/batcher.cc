#include "warp/serve/batcher.h"

#include <utility>

#include "warp/common/metrics.h"
#include "warp/obs/histogram.h"

namespace warp {
namespace serve {

Batcher::Batcher(QueryEngine* engine, size_t max_queue_depth)
    : engine_(engine),
      max_queue_depth_(max_queue_depth),
      dispatcher_([this] { DispatchLoop(); }) {}

Batcher::~Batcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  pending_cv_.notify_all();
  dispatcher_.join();
}

void Batcher::Execute(const std::vector<ServeRequest>& requests,
                      std::vector<ServeResponse>* responses) {
  if (requests.empty()) {
    responses->clear();
    return;
  }
  Submission submission;
  submission.requests = &requests;
  submission.responses = responses;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_queue_depth_ > 0 && pending_.size() >= max_queue_depth_) {
      // Admission gate: fast-fail instead of queueing behind a batch
      // that may be stuck on a dead shard or a pathological scan. The
      // client sees the failure in microseconds and can back off.
      ++shed_;
      WARP_COUNT_ADD(obs::Counter::kServeShed, requests.size());
      responses->clear();
      responses->reserve(requests.size());
      for (const ServeRequest& request : requests) {
        ServeResponse shed;
        shed.id = request.id;
        shed.op = request.op;
        shed.ok = false;
        shed.error = "overloaded";
        responses->push_back(std::move(shed));
      }
      return;
    }
    pending_.push_back(&submission);
    submission.queued.Restart();
    // One gauge step per submission (not per request): the admission
    // question the ROADMAP cares about is "how many clients are waiting",
    // decremented when the dispatcher adopts the submission into a batch.
    WARP_GAUGE_ADD(obs::Gauge::kServeQueueDepth, 1);
  }
  pending_cv_.notify_one();
  std::unique_lock<std::mutex> lock(mutex_);
  submission.cv.wait(lock, [&] { return submission.done; });
}

uint64_t Batcher::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

size_t Batcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

uint64_t Batcher::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

void Batcher::DispatchLoop() {
  while (true) {
    std::vector<Submission*> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pending_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop_ and fully drained.
      batch.assign(pending_.begin(), pending_.end());
      pending_.clear();
      ++batches_;
    }

    // Flatten every pending submission into one engine batch. Queue wait
    // is per submission (admission -> adoption); every request in a
    // submission shares its wait.
    std::vector<ServeRequest> requests;
    std::vector<double> queue_waits(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      Submission* s = batch[i];
      queue_waits[i] = s->queued.ElapsedMicros();
      WARP_GAUGE_ADD(obs::Gauge::kServeQueueDepth, -1);
      requests.insert(requests.end(), s->requests->begin(),
                      s->requests->end());
    }
    WARP_HISTOGRAM_RECORD(obs::Histogram::kServeBatchOccupancy,
                          requests.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t j = 0; j < batch[i]->requests->size(); ++j) {
        WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeStageQueueWait,
                                 queue_waits[i]);
      }
    }

    WARP_GAUGE_ADD(obs::Gauge::kServeInflightBatch, requests.size());
    std::vector<ServeResponse> responses;
    engine_->RunBatch(requests, &responses);
    WARP_GAUGE_ADD(obs::Gauge::kServeInflightBatch,
                   -static_cast<int64_t>(requests.size()));

    {
      std::lock_guard<std::mutex> lock(mutex_);
      size_t offset = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        Submission* s = batch[i];
        const size_t count = s->requests->size();
        for (size_t j = 0; j < count; ++j) {
          responses[offset + j].trace.queue_us = queue_waits[i];
        }
        s->responses->assign(
            std::make_move_iterator(responses.begin() +
                                    static_cast<ptrdiff_t>(offset)),
            std::make_move_iterator(responses.begin() +
                                    static_cast<ptrdiff_t>(offset + count)));
        offset += count;
        s->done = true;
        // Notify while holding the lock: the submitter frees the
        // Submission (stack storage) the moment it observes done, which
        // it cannot do before we release the mutex.
        s->cv.notify_one();
      }
    }
  }
}

}  // namespace serve
}  // namespace warp
