// Aligned console tables for the benchmark harnesses.
//
// Every experiment binary prints its results as a table whose rows mirror
// the series the paper reports (e.g. one row per warping-window setting in
// Fig. 1), so the output can be compared against the paper directly and
// pasted into EXPERIMENTS.md.

#ifndef WARP_COMMON_TABLE_PRINTER_H_
#define WARP_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace warp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats each double with `precision` digits.
  void AddRow(const std::vector<double>& cells, int precision = 4);

  std::string ToString() const;
  void Print() const;  // Writes ToString() to stdout.

  static std::string FormatDouble(double value, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace warp

#endif  // WARP_COMMON_TABLE_PRINTER_H_
