#include <vector>

namespace warp {
double HandRolledDp(int n) {
  std::vector<double> prev(n, 0.0);
  return prev[0];
}
}  // namespace warp
