// Name-keyed registry of served datasets, sharded and fully indexed.
//
// The serving argument of the paper (and of Rakthanmanon et al.'s UCR
// suite): when the same reference set answers many queries, every piece
// of per-candidate work that does not depend on the query should be done
// ONCE, at load time. A stored dataset therefore holds z-normalized
// copies of the series plus:
//
//   * per-series LB_Keogh envelopes at each registered band width, so the
//     candidate-side Keogh bound costs zero envelope builds per query;
//   * LB_Kim head/tail caches (first/last point of every series packed in
//     two flat arrays), so the first cascade rung touches 16 bytes per
//     candidate instead of paging in whole series.
//
// Since PR 9 the stored form is SHARDED: the logical dataset is
// hash-partitioned across N immutable ShardedDataset slices by a
// ShardRouter whose assignment is a pure function of (series index,
// epoch, shard count). Two consequences the query engine leans on:
//
//   * any shard count yields the same logical dataset — the slices are a
//     pure re-arrangement of the same z-normalized series, envelopes,
//     and endpoint caches, so sharded answers can be (and are, see
//     tests/serve/shard_golden_test.cc) bitwise-identical to the
//     single-shard scan;
//   * the partition is reproducible from (epoch, shard_count) alone, so
//     a snapshot file (warp/serve/snapshot.h) stores the LOGICAL arrays
//     once and any restart re-shards them without recomputing anything.
//
// The expensive pipeline (z-norm + envelope builds) lives in
// BuildDatasetIndex(); partitioning an already built DatasetIndex is a
// pure shuffle. Snapshot restore enters at RegisterIndex(), skipping the
// rebuild entirely.
//
// Stores hand out std::shared_ptr<const StoredDataset>, so workers read
// the index lock-free while a concurrent re-registration swaps in a new
// epoch; the old snapshot stays valid until its last reader drops it.
// Every (re-)registration bumps a store-wide epoch that is part of the
// result-cache key — answers cached against a replaced dataset can never
// be served again. The cache key deliberately does NOT include the shard
// count: shard layout never changes an answer (docs/SERVING.md).

#ifndef WARP_SERVE_DATASET_STORE_H_
#define WARP_SERVE_DATASET_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "warp/core/envelope.h"
#include "warp/ts/dataset.h"

namespace warp {
namespace serve {

// Pure, stateless shard assignment. Mixing the epoch into the hash means
// every re-registration reshuffles the partition (a free rebalance), yet
// any process that knows (epoch, shard_count) reproduces the exact
// layout — which is what lets a snapshot restore or a future
// multi-process deployment agree on ownership without coordination.
class ShardRouter {
 public:
  ShardRouter() = default;
  ShardRouter(uint64_t epoch, size_t shard_count)
      : epoch_(epoch), shard_count_(shard_count == 0 ? 1 : shard_count) {}

  uint64_t epoch() const { return epoch_; }
  size_t shard_count() const { return shard_count_; }

  // The shard owning global series `index`.
  size_t ShardOf(size_t index) const {
    return Partition(index, epoch_, shard_count_);
  }

  // The pure partition function (SplitMix64 finalizer over index/epoch).
  // Exposed statically so tests can pin its stability: changing it
  // silently would strand every multi-process deployment mid-rollout.
  static size_t Partition(size_t index, uint64_t epoch, size_t shard_count);

 private:
  uint64_t epoch_ = 0;
  size_t shard_count_ = 1;
};

// One shard's immutable slice of a stored dataset. Locals are packed
// contiguously (head/tail feed the SIMD LB_Kim batch rung directly);
// `global_index` maps local position -> global series index and is
// strictly ascending, so per-shard scan chunks inherit the global order.
struct ShardedDataset {
  size_t shard_id = 0;
  std::vector<size_t> global_index;  // Local -> global, ascending.
  Dataset data;                      // Z-normalized local slice.

  // envelopes[slot][local] parallels StoredDataset::bands[slot].
  std::vector<std::vector<Envelope>> envelopes;

  // LB_Kim endpoint caches for the local slice.
  std::vector<double> head;
  std::vector<double> tail;

  size_t size() const { return data.size(); }
};

// The logical (unsharded) indexed dataset: everything expensive about a
// registration, in global series order. Built once by BuildDatasetIndex
// or loaded bit-exactly from a snapshot; partitioned by RegisterIndex.
struct DatasetIndex {
  Dataset data;               // Z-normalized, global order.
  size_t uniform_length = 0;  // 0 when series lengths differ.
  std::vector<size_t> bands;  // Sorted, deduplicated half-widths.
  std::vector<std::vector<Envelope>> envelopes;  // [band slot][series].
  std::vector<double> head;
  std::vector<double> tail;
};

// Z-normalizes every series and builds the LB index at each band in
// `bands` (deduplicated; envelope index only built for uniform-length
// datasets — the 1-NN setting). The expensive half of registration.
DatasetIndex BuildDatasetIndex(Dataset dataset, std::vector<size_t> bands);

// Locates one global series inside the sharded layout.
struct SeriesRef {
  uint32_t shard = 0;
  uint32_t local = 0;
};

// An immutable, fully indexed, sharded dataset snapshot.
struct StoredDataset {
  static constexpr size_t kNoBand = static_cast<size_t>(-1);

  std::string name;
  uint64_t epoch = 0;         // Store-wide, bumped per (re-)registration.
  size_t total_series = 0;
  size_t uniform_length = 0;  // 0 when series lengths differ.
  std::vector<size_t> bands;  // Indexed half-widths (global, per shard).

  ShardRouter router;
  std::vector<ShardedDataset> shards;
  std::vector<SeriesRef> locate;  // Global index -> (shard, local).

  size_t size() const { return total_series; }
  size_t shard_count() const { return shards.size(); }

  // The series / endpoint caches for global index `i` (< size()).
  const TimeSeries& SeriesAt(size_t i) const;

  // The slot into `bands` (and every shard's `envelopes`) holding
  // envelopes of half-width `band`, or kNoBand if not indexed.
  size_t BandSlot(size_t band) const;
};

class DatasetStore {
 public:
  // Every dataset registered with this store is partitioned across
  // `shard_count` shards (>= 1; 0 is coerced to 1).
  explicit DatasetStore(size_t shard_count = 1);

  DatasetStore(const DatasetStore&) = delete;
  DatasetStore& operator=(const DatasetStore&) = delete;

  size_t shard_count() const { return shard_count_; }

  // Registers (or replaces) `name`: BuildDatasetIndex + RegisterIndex.
  // Returns the stored snapshot. Thread-safe.
  std::shared_ptr<const StoredDataset> Register(const std::string& name,
                                                Dataset dataset,
                                                std::vector<size_t> bands);

  // Registers an already built index (snapshot restore path): assigns a
  // fresh epoch and partitions the logical arrays across the store's
  // shards — a pure shuffle, no recomputation. Thread-safe.
  std::shared_ptr<const StoredDataset> RegisterIndex(const std::string& name,
                                                     DatasetIndex index);

  // The current snapshot for `name`, or nullptr if unknown.
  std::shared_ptr<const StoredDataset> Get(const std::string& name) const;

  // Removes `name`; returns false if it was not present. Outstanding
  // snapshots stay valid.
  bool Drop(const std::string& name);

  // Registered names in sorted order.
  std::vector<std::string> Names() const;

  // The epoch the next registration will get (== number of registrations
  // so far + 1).
  uint64_t CurrentEpoch() const;

 private:
  const size_t shard_count_;
  mutable std::mutex mutex_;
  uint64_t next_epoch_ = 1;
  std::map<std::string, std::shared_ptr<const StoredDataset>> datasets_;
};

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_DATASET_STORE_H_
