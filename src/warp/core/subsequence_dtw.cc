#include "warp/core/subsequence_dtw.h"

#include <algorithm>
#include <limits>

#include "warp/common/assert.h"
#include "warp/obs/metrics.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double SubsequenceDtwDistance(std::span<const double> query,
                              std::span<const double> series,
                              CostKind cost) {
  WARP_CHECK(!query.empty() && !series.empty());
  const size_t n = query.size();
  const size_t m = series.size();
  WARP_COUNT_ADD(obs::Counter::kSubsequenceCells, n * m);
  return WithCost(cost, [&](auto c) {
    std::vector<double> prev(m);
    std::vector<double> cur(m);
    // Free start: row 0 pays only its own cell (no accumulation along j).
    for (size_t j = 0; j < m; ++j) prev[j] = c(query[0], series[j]);
    for (size_t i = 1; i < n; ++i) {
      cur[0] = prev[0] + c(query[i], series[0]);
      for (size_t j = 1; j < m; ++j) {
        const double best =
            std::min({prev[j - 1], prev[j], cur[j - 1]});
        cur[j] = best + c(query[i], series[j]);
      }
      std::swap(prev, cur);
    }
    // Free end: best cost over all ending columns.
    return *std::min_element(prev.begin(), prev.end());
  });
}

SubsequenceAlignment SubsequenceDtw(std::span<const double> query,
                                    std::span<const double> series,
                                    CostKind cost) {
  WARP_CHECK(!query.empty() && !series.empty());
  const size_t n = query.size();
  const size_t m = series.size();
  WARP_COUNT_ADD(obs::Counter::kSubsequenceCells, n * m);

  return WithCost(cost, [&](auto c) {
    std::vector<double> d(n * m);
    auto at = [&](size_t i, size_t j) -> double& { return d[i * m + j]; };

    for (size_t j = 0; j < m; ++j) at(0, j) = c(query[0], series[j]);
    for (size_t i = 1; i < n; ++i) {
      at(i, 0) = at(i - 1, 0) + c(query[i], series[0]);
      for (size_t j = 1; j < m; ++j) {
        const double best =
            std::min({at(i - 1, j - 1), at(i - 1, j), at(i, j - 1)});
        at(i, j) = best + c(query[i], series[j]);
      }
    }

    SubsequenceAlignment result;
    size_t end = 0;
    double best = kInf;
    for (size_t j = 0; j < m; ++j) {
      if (at(n - 1, j) < best) {
        best = at(n - 1, j);
        end = j;
      }
    }
    result.distance = best;
    result.end = end;

    // Traceback: diagonal-preferring, stopping when row 0 is reached (any
    // column of row 0 is a legal start).
    size_t i = n - 1;
    size_t j = end;
    result.path.push_back({static_cast<uint32_t>(i),
                           static_cast<uint32_t>(j)});
    while (i != 0) {
      double step_best = kInf;
      int move = -1;  // 0 diag, 1 up, 2 left.
      if (j > 0) {
        step_best = at(i - 1, j - 1);
        move = 0;
      }
      if (at(i - 1, j) < step_best) {
        step_best = at(i - 1, j);
        move = 1;
      }
      if (j > 0 && at(i, j - 1) < step_best) {
        step_best = at(i, j - 1);
        move = 2;
      }
      WARP_DCHECK(move >= 0);
      if (move == 0) {
        --i;
        --j;
      } else if (move == 1) {
        --i;
      } else {
        --j;
      }
      result.path.push_back({static_cast<uint32_t>(i),
                             static_cast<uint32_t>(j)});
    }
    std::reverse(result.path.begin(), result.path.end());
    result.start = result.path.front().j;
    return result;
  });
}

}  // namespace warp
