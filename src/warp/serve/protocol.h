// The line-delimited JSON wire protocol (docs/SERVING.md).
//
// One request object per line in, one response object per line out,
// matched by the client-chosen `id`. This layer converts between wire
// lines and the typed structs in warp/serve/request.h; it never touches
// sockets or the engine. Doubles are emitted with
// JsonWriter::FormatDouble (shortest round-trip form) and parsed with
// strtod, so distances survive the wire bit-for-bit — the loopback golden
// tests compare them with EXPECT_EQ.

#ifndef WARP_SERVE_PROTOCOL_H_
#define WARP_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "warp/serve/request.h"

namespace warp {
namespace serve {

// Operations the server answers without the query engine.
enum class ControlOp {
  kNone,      // Not a control op: `request` holds a query.
  kPing,      // Liveness check.
  kInfo,      // Describe a dataset (size, length, epoch, indexed bands).
  kStats,     // Counters, cache, gauges, histograms, slowlog summary.
  kMetrics,   // warp-metrics-v1 text exposition (docs/SERVING.md).
  kSlowlog,   // Drain the slow-query log (sorted by engine time, desc).
  kLoad,      // Load a UCR file into the store.
  kSaveSnapshot,  // Persist a dataset's index as a warp-snap-v1 file.
  kLoadSnapshot,  // Register a dataset from a warp-snap-v1 file.
  kShutdown,  // Finish open work and exit the serve loop.
};

// A parsed request line: either a control op or an engine query.
struct ParsedLine {
  int64_t id = 0;
  ControlOp control = ControlOp::kNone;
  ServeRequest request;          // Valid when control == kNone.
  std::string dataset;           // info / load / save_snapshot; optional
                                 // rename for load_snapshot.
  std::string path;              // load / save_snapshot / load_snapshot.
  std::vector<double> band_fractions;  // load ("bands" member).
};

// Parses one wire line. On failure returns false and fills *error with a
// client-presentable message (*out->id is still filled when the line had
// a readable id, so the error response can echo it).
bool ParseRequestLine(const std::string& line, ParsedLine* out,
                      std::string* error);

// Serializes a query response (ok or error) as one line, no trailing
// newline.
std::string FormatResponse(const ServeResponse& response);

// An error response line for requests that never reached the engine.
std::string FormatErrorLine(int64_t id, const std::string& error);

// Serializes a query request as one wire line, no trailing newline.
// Every parameter ParseRequestLine reads is emitted explicitly, so
// ParseRequestLine(FormatRequest(r)) reconstructs `r` field-for-field
// (doubles bit-for-bit via FormatDouble <-> strtod). The cluster router
// uses this to re-serialize client queries as shard-stamped sub-scans.
std::string FormatRequest(const ServeRequest& request);

// Parses a response line (the inverse of FormatResponse, minus the trace
// echo) into a typed ServeResponse. The cluster router uses this to
// gather worker sub-scan replies; distances survive bit-for-bit, so a
// re-serialized merge is byte-identical to the single-process answer.
bool ParseResponseLine(const std::string& line, ServeResponse* out,
                       std::string* error);

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_PROTOCOL_H_
