// Unit tests for bottom-up piecewise-linear segmentation.

#include "warp/mining/segmentation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"

namespace warp {
namespace {

std::vector<double> PiecewiseLinear() {
  // Three exact linear pieces: up, flat, down.
  std::vector<double> series;
  for (int t = 0; t < 20; ++t) series.push_back(0.5 * t);
  for (int t = 0; t < 20; ++t) series.push_back(9.5);
  for (int t = 0; t < 20; ++t) series.push_back(9.5 - 1.0 * t);
  return series;
}

TEST(SegmentationTest, RecoversExactPiecewiseStructure) {
  const std::vector<double> series = PiecewiseLinear();
  SegmentationOptions options;
  options.max_segments = 3;
  const std::vector<Segment> segments =
      BottomUpSegmentation(series, options);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_NEAR(TotalSegmentationError(segments), 0.0, 1e-6);
  EXPECT_NEAR(segments[0].slope, 0.5, 1e-6);
  EXPECT_NEAR(segments[1].slope, 0.0, 1e-6);
  EXPECT_NEAR(segments[2].slope, -1.0, 1e-6);
}

TEST(SegmentationTest, SegmentsTileTheSeries) {
  Rng rng(201);
  const std::vector<double> series = gen::RandomWalk(101, rng);
  SegmentationOptions options;
  options.max_segments = 7;
  const std::vector<Segment> segments =
      BottomUpSegmentation(series, options);
  EXPECT_EQ(segments.front().begin, 0u);
  EXPECT_EQ(segments.back().end, series.size() - 1);
  for (size_t s = 1; s < segments.size(); ++s) {
    EXPECT_EQ(segments[s].begin, segments[s - 1].end + 1);
  }
}

TEST(SegmentationTest, FewerSegmentsMeansMoreError) {
  Rng rng(202);
  const std::vector<double> series = gen::RandomWalk(200, rng);
  double previous = -1.0;
  for (size_t k : {40u, 20u, 10u, 5u, 1u}) {
    SegmentationOptions options;
    options.max_segments = k;
    const double error =
        TotalSegmentationError(BottomUpSegmentation(series, options));
    EXPECT_GE(error, previous - 1e-9) << "k=" << k;
    previous = error;
  }
}

TEST(SegmentationTest, ErrorBudgetStopsMerging) {
  const std::vector<double> series = PiecewiseLinear();
  SegmentationOptions options;
  options.max_segments = 1;
  options.max_segment_error = 1.0;  // Merging the exact pieces costs more.
  const std::vector<Segment> segments =
      BottomUpSegmentation(series, options);
  EXPECT_GE(segments.size(), 3u);
  for (const Segment& segment : segments) {
    EXPECT_LE(segment.error, 1.0 + 1e-9);
  }
}

TEST(SegmentationTest, ReconstructionMatchesLength) {
  Rng rng(203);
  const std::vector<double> series = gen::RandomWalk(150, rng);
  SegmentationOptions options;
  options.max_segments = 10;
  const std::vector<Segment> segments =
      BottomUpSegmentation(series, options);
  const std::vector<double> reconstruction =
      ReconstructFromSegments(segments);
  ASSERT_EQ(reconstruction.size(), series.size());
  // Reconstruction residual equals the reported total error.
  double residual = 0.0;
  for (size_t t = 0; t < series.size(); ++t) {
    residual += (series[t] - reconstruction[t]) * (series[t] - reconstruction[t]);
  }
  EXPECT_NEAR(residual, TotalSegmentationError(segments), 1e-6);
}

TEST(SegmentationTest, SingleSegmentIsGlobalLeastSquares) {
  std::vector<double> series;
  for (int t = 0; t < 50; ++t) series.push_back(3.0 + 2.0 * t);
  SegmentationOptions options;
  options.max_segments = 1;
  const std::vector<Segment> segments =
      BottomUpSegmentation(series, options);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_NEAR(segments[0].slope, 2.0, 1e-9);
  EXPECT_NEAR(segments[0].intercept, 3.0, 1e-9);
  EXPECT_NEAR(segments[0].error, 0.0, 1e-9);
}

}  // namespace
}  // namespace warp
