#include "warp/serve/wire.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace warp {
namespace serve {

namespace {

// Guards against hostile input: deeper nesting than any legal request
// uses, and a token budget far above any legal request size.
constexpr int kMaxDepth = 32;
constexpr size_t kMaxElements = 1u << 22;  // ~4M values per document.

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* value, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(value, 0)) {
      *error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      *error = "trailing characters after JSON value at offset " +
               std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Fail(std::string("invalid literal, expected '") + literal + "'");
    }
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* value, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (++elements_ > kMaxElements) return Fail("document too large");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        value->kind_ = JsonValue::Kind::kNull;
        return ConsumeLiteral("null");
      case 't':
        value->kind_ = JsonValue::Kind::kBool;
        value->bool_ = true;
        return ConsumeLiteral("true");
      case 'f':
        value->kind_ = JsonValue::Kind::kBool;
        value->bool_ = false;
        return ConsumeLiteral("false");
      case '"':
        value->kind_ = JsonValue::Kind::kString;
        return ParseString(&value->string_);
      case '[':
        return ParseArray(value, depth);
      case '{':
        return ParseObject(value, depth);
      default:
        return ParseNumber(value);
    }
  }

  bool ParseNumber(JsonValue* value) {
    const char c = text_[pos_];
    if (c != '-' && (c < '0' || c > '9')) {
      return Fail("unexpected character");
    }
    // strtod accepts a superset of JSON numbers (hex floats, inf, nan,
    // leading '+'); restrict to the JSON grammar by scanning the token
    // first.
    size_t end = pos_;
    if (text_[end] == '-') ++end;
    const size_t int_start = end;
    while (end < text_.size() && text_[end] >= '0' && text_[end] <= '9') {
      ++end;
    }
    if (end == int_start) return Fail("malformed number");
    if (text_[int_start] == '0' && end - int_start > 1) {
      return Fail("malformed number (leading zero)");
    }
    if (end < text_.size() && text_[end] == '.') {
      ++end;
      const size_t frac_start = end;
      while (end < text_.size() && text_[end] >= '0' && text_[end] <= '9') {
        ++end;
      }
      if (end == frac_start) return Fail("malformed number (empty fraction)");
    }
    if (end < text_.size() && (text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
      if (end < text_.size() && (text_[end] == '+' || text_[end] == '-')) {
        ++end;
      }
      const size_t exp_start = end;
      while (end < text_.size() && text_[end] >= '0' && text_[end] <= '9') {
        ++end;
      }
      if (end == exp_start) return Fail("malformed number (empty exponent)");
    }
    const std::string token(text_.substr(pos_, end - pos_));
    char* parse_end = nullptr;
    const double parsed = std::strtod(token.c_str(), &parse_end);
    if (parse_end != token.c_str() + token.size()) {
      return Fail("malformed number");
    }
    value->kind_ = JsonValue::Kind::kNumber;
    value->number_ = parsed;
    pos_ = end;
    return true;
  }

  bool ParseHex4(uint32_t* code_point) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t result = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      result <<= 4;
      if (c >= '0' && c <= '9') result |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') result |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') result |= static_cast<uint32_t>(c - 'A' + 10);
      else return Fail("invalid \\u escape digit");
    }
    pos_ += 4;
    *code_point = result;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!Consume('\\') || !Consume('u')) {
              return Fail("unpaired surrogate");
            }
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  bool ParseArray(JsonValue* value, int depth) {
    Consume('[');
    value->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue element;
      SkipWhitespace();
      if (!ParseValue(&element, depth + 1)) return false;
      value->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* value, int depth) {
    Consume('{');
    value->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return true;
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWhitespace();
      JsonValue member;
      if (!ParseValue(&member, depth + 1)) return false;
      value->object_[std::move(key)] = std::move(member);
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t elements_ = 0;
  std::string error_;
};

bool ParseJson(std::string_view text, JsonValue* value, std::string* error) {
  JsonParser parser(text);
  return parser.Parse(value, error);
}

}  // namespace serve
}  // namespace warp
