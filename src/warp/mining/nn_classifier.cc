#include "warp/mining/nn_classifier.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "warp/common/assert.h"
#include "warp/common/parallel.h"
#include "warp/common/stopwatch.h"
#include "warp/core/dtw.h"
#include "warp/core/lower_bounds.h"
#include "warp/common/metrics.h"
#include "warp/simd/batch.h"
#include "warp/simd/dispatch.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One query per chunk: each query is a full scan of the training set, so
// chunk overhead is negligible and load balance is maximal.
constexpr size_t kEvalGrain = 1;

void Finalize(ClassificationStats* stats) {
  stats->accuracy = stats->total > 0 ? static_cast<double>(stats->correct) /
                                           static_cast<double>(stats->total)
                                     : 0.0;
  stats->error_rate = 1.0 - stats->accuracy;
}

// Shared evaluation loop: classifies query i via is_correct(i) for all i
// in [0, n), serially when threads <= 1, otherwise chunked over a pool.
// Per-query correctness lands in its own slot, so the counts are
// identical at any thread count.
template <typename IsCorrectFn>
ClassificationStats EvaluateQueries(size_t n, size_t threads,
                                    const IsCorrectFn& is_correct) {
  ClassificationStats stats;
  threads = ResolveThreadCount(threads);
  std::optional<ThreadPool> pool;
  if (threads > 1 && n > 1) pool.emplace(threads);
  std::vector<uint8_t> correct(n, 0);
  Stopwatch watch;
  ParallelFor(pool ? &*pool : nullptr, 0, n, kEvalGrain,
              [&](size_t chunk_begin, size_t chunk_end, size_t /*worker*/) {
                for (size_t i = chunk_begin; i < chunk_end; ++i) {
                  correct[i] = is_correct(i) ? 1 : 0;
                }
              });
  stats.seconds = watch.ElapsedSeconds();
  stats.total = n;
  for (const uint8_t c : correct) stats.correct += c;
  Finalize(&stats);
  return stats;
}

}  // namespace

Prediction Classify1Nn(const Dataset& train, std::span<const double> query,
                       const SeriesMeasure& measure) {
  WARP_CHECK(!train.empty());
  Prediction best;
  best.distance = kInf;
  for (size_t i = 0; i < train.size(); ++i) {
    const double d = measure(train[i].view(), query);
    if (d < best.distance) {
      best.distance = d;
      best.nn_index = i;
      best.label = train[i].label();
    }
  }
  return best;
}

ClassificationStats Evaluate1Nn(const Dataset& train, const Dataset& test,
                                const SeriesMeasure& measure,
                                size_t threads) {
  WARP_CHECK(!train.empty() && !test.empty());
  return EvaluateQueries(test.size(), threads, [&](size_t i) {
    return Classify1Nn(train, test[i].view(), measure).label ==
           test[i].label();
  });
}

namespace {

// A bounded set of the k nearest (distance, index) pairs, kept sorted
// ascending; worst() is the pruning threshold once full.
class KBest {
 public:
  explicit KBest(size_t k) : k_(k) {}

  void Offer(double distance, size_t index) {
    if (entries_.size() == k_ && distance >= worst()) return;
    const std::pair<double, size_t> entry{distance, index};
    const auto at = std::upper_bound(entries_.begin(), entries_.end(), entry);
    entries_.insert(at, entry);
    if (entries_.size() > k_) entries_.pop_back();
  }

  bool full() const { return entries_.size() == k_; }
  double worst() const {
    return entries_.empty() ? std::numeric_limits<double>::infinity()
                            : entries_.back().first;
  }
  double PruneThreshold() const {
    return full() ? worst() : std::numeric_limits<double>::infinity();
  }
  const std::vector<std::pair<double, size_t>>& entries() const {
    return entries_;
  }

 private:
  size_t k_;
  std::vector<std::pair<double, size_t>> entries_;
};

// Majority vote over the k nearest; ties resolved toward the class whose
// nearest member is closest (entries are sorted, so first-seen wins).
Prediction VoteFromKBest(const Dataset& train, const KBest& kbest) {
  WARP_CHECK(!kbest.entries().empty());
  std::map<int, size_t> votes;
  for (const auto& [distance, index] : kbest.entries()) {
    ++votes[train[index].label()];
  }
  size_t best_votes = 0;
  for (const auto& [label, n] : votes) best_votes = std::max(best_votes, n);

  Prediction prediction;
  prediction.nn_index = kbest.entries().front().second;
  prediction.distance = kbest.entries().front().first;
  for (const auto& [distance, index] : kbest.entries()) {
    if (votes[train[index].label()] == best_votes) {
      prediction.label = train[index].label();
      break;
    }
  }
  return prediction;
}

}  // namespace

Prediction ClassifyKnn(const Dataset& train, std::span<const double> query,
                       size_t k, const SeriesMeasure& measure) {
  WARP_CHECK(!train.empty());
  WARP_CHECK(k >= 1 && k <= train.size());
  KBest kbest(k);
  for (size_t i = 0; i < train.size(); ++i) {
    kbest.Offer(measure(train[i].view(), query), i);
  }
  return VoteFromKBest(train, kbest);
}

ClassificationStats EvaluateKnn(const Dataset& train, const Dataset& test,
                                size_t k, const SeriesMeasure& measure,
                                size_t threads) {
  WARP_CHECK(!train.empty() && !test.empty());
  return EvaluateQueries(test.size(), threads, [&](size_t i) {
    return ClassifyKnn(train, test[i].view(), k, measure).label ==
           test[i].label();
  });
}

Prediction Classify1NnMulti(const std::vector<MultiSeries>& train,
                            const MultiSeries& query,
                            const MultiMeasure& measure) {
  WARP_CHECK(!train.empty());
  Prediction best;
  best.distance = kInf;
  for (size_t i = 0; i < train.size(); ++i) {
    const double d = measure(train[i], query);
    if (d < best.distance) {
      best.distance = d;
      best.nn_index = i;
      best.label = train[i].label();
    }
  }
  return best;
}

ClassificationStats Evaluate1NnMulti(const std::vector<MultiSeries>& train,
                                     const std::vector<MultiSeries>& test,
                                     const MultiMeasure& measure,
                                     size_t threads) {
  WARP_CHECK(!train.empty() && !test.empty());
  return EvaluateQueries(test.size(), threads, [&](size_t i) {
    return Classify1NnMulti(train, test[i], measure).label ==
           test[i].label();
  });
}

// ---------------------------------------------------------------------------

AcceleratedNnClassifier::AcceleratedNnClassifier(const Dataset& train,
                                                 size_t band, CostKind cost)
    : train_(train), band_(band), cost_(cost) {
  WARP_CHECK(!train_.empty());
  length_ = train_.UniformLength();
  WARP_CHECK_MSG(length_ > 0,
                 "accelerated classifier requires uniform-length series");
  train_envelopes_.reserve(train_.size());
  heads_.reserve(train_.size());
  tails_.reserve(train_.size());
  for (const TimeSeries& series : train_.series()) {
    train_envelopes_.push_back(ComputeEnvelope(series.view(), band_));
    heads_.push_back(series.view().front());
    tails_.push_back(series.view().back());
  }
}

namespace {

// Lane-parallel LB_Kim over every candidate. The values do not depend on
// the running best-so-far, so hoisting them out of the scan changes no
// prune decision; LbKimFl's 1x1 special case keeps length-1 sets on the
// scalar call. Returns true when the cache was filled.
bool BatchKimBounds(std::span<const double> query, size_t length,
                    const std::vector<double>& heads,
                    const std::vector<double>& tails, CostKind cost,
                    std::vector<double>* cache) {
  if (!simd::SimdActive() || length < 2) return false;
  cache->resize(heads.size());
  WithCost(cost, [&](auto c) {
    simd::LbKimBatch<decltype(c)>(query.front(), query.back(), heads.data(),
                                  tails.data(), heads.size(), cache->data());
  });
  return true;
}

}  // namespace

Prediction AcceleratedNnClassifier::Classify(
    std::span<const double> query, ClassificationStats* stats) const {
  // Thread-local so repeated queries from one thread hit warm scratch rows
  // (allocation-free steady state; see obs::Counter::kWorkspaceAllocs).
  static thread_local DtwWorkspace workspace;
  return Classify(query, stats, &workspace);
}

Prediction AcceleratedNnClassifier::Classify(
    std::span<const double> query, ClassificationStats* stats,
    DtwWorkspace* buffer) const {
  WARP_CHECK_MSG(query.size() == length_,
                 "query length must match the training set");
  const Envelope query_envelope = ComputeEnvelope(query, band_);
  std::vector<double> kim_cache;
  const bool batched_kim =
      BatchKimBounds(query, length_, heads_, tails_, cost_, &kim_cache);

  Prediction best;
  best.distance = kInf;
  for (size_t i = 0; i < train_.size(); ++i) {
    if (stats != nullptr) ++stats->candidates;
    WARP_COUNT(obs::Counter::kCascadeCandidates);
    const std::span<const double> candidate = train_[i].view();

    // Rung 1: constant-time LB_Kim (batched per block when SIMD is on;
    // the per-candidate call counter is kept either way).
    double kim;
    if (batched_kim) {
      WARP_COUNT(obs::Counter::kLbKimCalls);
      kim = kim_cache[i];
    } else {
      kim = LbKimFl(query, candidate, cost_);
    }
    if (kim >= best.distance) {
      if (stats != nullptr) ++stats->pruned_by_kim;
      WARP_COUNT(obs::Counter::kLbKimKills);
      continue;
    }
    // Rung 2: LB_Keogh with the query envelope, early-abandoning at the
    // best-so-far, then the (tighter on some pairs) reversed direction.
    if (LbKeogh(query_envelope, candidate, cost_, best.distance) >=
            best.distance ||
        LbKeogh(train_envelopes_[i], query, cost_, best.distance) >=
            best.distance) {
      if (stats != nullptr) ++stats->pruned_by_keogh;
      WARP_COUNT(obs::Counter::kLbKeoghKills);
      continue;
    }
    // Rung 3: exact cDTW with early abandoning.
    const double d = CdtwDistanceAbandoning(query, candidate, band_,
                                            best.distance, cost_, buffer);
    if (stats != nullptr) {
      if (d == kInf) {
        ++stats->abandoned_dtw;
      } else {
        ++stats->full_dtw;
      }
    }
    if (d == kInf) {
      WARP_COUNT(obs::Counter::kCascadeEarlyAbandons);
    } else {
      WARP_COUNT(obs::Counter::kCascadeFullDtw);
    }
    if (d < best.distance) {
      best.distance = d;
      best.nn_index = i;
      best.label = train_[i].label();
    }
  }
  return best;
}

Prediction AcceleratedNnClassifier::ClassifyKnn(
    std::span<const double> query, size_t k,
    ClassificationStats* stats) const {
  WARP_CHECK_MSG(query.size() == length_,
                 "query length must match the training set");
  WARP_CHECK(k >= 1 && k <= train_.size());
  const Envelope query_envelope = ComputeEnvelope(query, band_);
  std::vector<double> kim_cache;
  const bool batched_kim =
      BatchKimBounds(query, length_, heads_, tails_, cost_, &kim_cache);

  KBest kbest(k);
  static thread_local DtwWorkspace buffer;
  for (size_t i = 0; i < train_.size(); ++i) {
    if (stats != nullptr) ++stats->candidates;
    WARP_COUNT(obs::Counter::kCascadeCandidates);
    const std::span<const double> candidate = train_[i].view();
    const double threshold = kbest.PruneThreshold();

    double kim;
    if (batched_kim) {
      WARP_COUNT(obs::Counter::kLbKimCalls);
      kim = kim_cache[i];
    } else {
      kim = LbKimFl(query, candidate, cost_);
    }
    if (kim >= threshold) {
      if (stats != nullptr) ++stats->pruned_by_kim;
      WARP_COUNT(obs::Counter::kLbKimKills);
      continue;
    }
    if (LbKeogh(query_envelope, candidate, cost_, threshold) >= threshold ||
        LbKeogh(train_envelopes_[i], query, cost_, threshold) >= threshold) {
      if (stats != nullptr) ++stats->pruned_by_keogh;
      WARP_COUNT(obs::Counter::kLbKeoghKills);
      continue;
    }
    const double d = CdtwDistanceAbandoning(query, candidate, band_,
                                            threshold, cost_, &buffer);
    if (stats != nullptr) {
      if (d == kInf) {
        ++stats->abandoned_dtw;
      } else {
        ++stats->full_dtw;
      }
    }
    if (d == kInf) {
      WARP_COUNT(obs::Counter::kCascadeEarlyAbandons);
    } else {
      WARP_COUNT(obs::Counter::kCascadeFullDtw);
    }
    if (d < kInf) kbest.Offer(d, i);
  }
  return VoteFromKBest(train_, kbest);
}

ClassificationStats AcceleratedNnClassifier::Evaluate(const Dataset& test,
                                                      size_t threads) const {
  WARP_CHECK(!test.empty());
  const size_t n = test.size();
  threads = ResolveThreadCount(threads);
  std::optional<ThreadPool> pool;
  if (threads > 1 && n > 1) pool.emplace(threads);
  ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  // Each chunk accumulates its own cascade counters; the merge below runs
  // in chunk order, so the totals match the serial scan exactly. Each
  // worker slot reuses one DtwWorkspace across all its queries.
  std::vector<ClassificationStats> partials(ChunkCount(0, n, kEvalGrain));
  PerThread<DtwWorkspace> buffers(pool_ptr);
  Stopwatch watch;
  ParallelFor(pool_ptr, 0, n, kEvalGrain,
              [&](size_t chunk_begin, size_t chunk_end, size_t worker) {
                ClassificationStats local;
                for (size_t i = chunk_begin; i < chunk_end; ++i) {
                  const Prediction prediction = Classify(
                      test[i].view(), &local, &buffers[worker]);
                  ++local.total;
                  if (prediction.label == test[i].label()) ++local.correct;
                }
                partials[chunk_begin / kEvalGrain] = local;
              });

  ClassificationStats stats;
  stats.seconds = watch.ElapsedSeconds();
  for (const ClassificationStats& partial : partials) {
    stats.total += partial.total;
    stats.correct += partial.correct;
    stats.candidates += partial.candidates;
    stats.pruned_by_kim += partial.pruned_by_kim;
    stats.pruned_by_keogh += partial.pruned_by_keogh;
    stats.abandoned_dtw += partial.abandoned_dtw;
    stats.full_dtw += partial.full_dtw;
  }
  Finalize(&stats);
  return stats;
}

}  // namespace warp
