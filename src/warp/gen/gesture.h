// Gesture-like series generators.
//
// Stand-ins for the paper's UWaveGestureLibraryAll exemplars (Fig. 1) and
// the Appendix-B skeleton-keypoint gestures. Each gesture class has a
// deterministic smooth template (a mixture of random sinusoids and bumps);
// exemplars are template + bounded random time-warp + amplitude jitter +
// noise, then z-normalized — the structure of real repeated human motions,
// whose natural warping W is small.

#ifndef WARP_GEN_GESTURE_H_
#define WARP_GEN_GESTURE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "warp/common/random.h"
#include "warp/ts/dataset.h"
#include "warp/ts/multi_series.h"

namespace warp {
namespace gen {

struct GestureOptions {
  size_t length = 945;            // UWaveGestureLibraryAll exemplar length.
  int num_classes = 8;            // UWave has eight gesture vocabularies.
  double warp_fraction = 0.05;    // Natural W of human gestures (Case A).
  double noise_stddev = 0.05;
  double amplitude_jitter = 0.1;  // Relative amplitude variation.
  uint64_t seed = 7;
};

// The deterministic class template (before warping/noise), z-normalized.
std::vector<double> GestureTemplate(int class_id, size_t length,
                                    uint64_t seed);

// One exemplar of `class_id` under `options`, drawn from `rng`.
TimeSeries MakeGesture(int class_id, const GestureOptions& options, Rng& rng);

// `per_class` exemplars of each class; series are z-normalized and
// labeled with their class id.
Dataset MakeGestureDataset(size_t per_class, const GestureOptions& options);

// Multichannel exemplar: `num_channels` coupled channels per gesture (the
// channels share the exemplar's time-warp, as real body-part trajectories
// do). Used by the Appendix-B reproduction.
MultiSeries MakeMultiGesture(int class_id, size_t num_channels,
                             const GestureOptions& options, Rng& rng);

std::vector<MultiSeries> MakeMultiGestureDataset(size_t per_class,
                                                 size_t num_channels,
                                                 const GestureOptions& options);

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_GESTURE_H_
