// Unit tests for TimeSeries and MultiSeries containers.

#include "warp/ts/time_series.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "warp/ts/multi_series.h"

namespace warp {
namespace {

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries series({1.0, 2.0, 3.0}, 5);
  EXPECT_EQ(series.size(), 3u);
  EXPECT_FALSE(series.empty());
  EXPECT_EQ(series.label(), 5);
  EXPECT_DOUBLE_EQ(series[1], 2.0);
  series[1] = 9.0;
  EXPECT_DOUBLE_EQ(series[1], 9.0);
}

TEST(TimeSeriesTest, DefaultIsUnlabeledAndEmpty) {
  TimeSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.label(), TimeSeries::kUnlabeled);
}

TEST(TimeSeriesTest, SliceCopiesRangeAndMetadata) {
  TimeSeries series({0.0, 1.0, 2.0, 3.0, 4.0}, 2);
  series.set_name("demo");
  const TimeSeries slice = series.Slice(1, 4);
  EXPECT_EQ(slice.values(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(slice.label(), 2);
  EXPECT_EQ(slice.name(), "demo");
}

TEST(TimeSeriesTest, SummaryStatistics) {
  const TimeSeries series({1.0, 5.0, 3.0});
  EXPECT_DOUBLE_EQ(series.Min(), 1.0);
  EXPECT_DOUBLE_EQ(series.Max(), 5.0);
  EXPECT_DOUBLE_EQ(series.Mean(), 3.0);
  EXPECT_NEAR(series.StdDev(), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(TimeSeriesTest, DetectsNonFinite) {
  EXPECT_FALSE(TimeSeries({1.0, 2.0}).HasNonFinite());
  EXPECT_TRUE(
      TimeSeries({1.0, std::numeric_limits<double>::quiet_NaN()})
          .HasNonFinite());
  EXPECT_TRUE(
      TimeSeries({std::numeric_limits<double>::infinity()}).HasNonFinite());
}

TEST(MultiSeriesTest, ChannelMajorStorage) {
  MultiSeries series(std::vector<std::vector<double>>{{1.0, 2.0},
                                                      {3.0, 4.0}},
                     7);
  EXPECT_EQ(series.num_channels(), 2u);
  EXPECT_EQ(series.length(), 2u);
  EXPECT_EQ(series.label(), 7);
  EXPECT_DOUBLE_EQ(series.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(series.at(1, 0), 3.0);
  const std::span<const double> channel1 = series.channel(1);
  EXPECT_DOUBLE_EQ(channel1[1], 4.0);
}

TEST(MultiSeriesTest, FrameGathersAcrossChannels) {
  MultiSeries series(
      std::vector<std::vector<double>>{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  std::vector<double> frame;
  series.Frame(1, frame);
  EXPECT_EQ(frame, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(MultiSeriesTest, ZNormalizePerChannel) {
  MultiSeries series(
      std::vector<std::vector<double>>{{0.0, 2.0}, {10.0, 30.0}});
  series.ZNormalizeChannels();
  EXPECT_DOUBLE_EQ(series.at(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(series.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(series.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(series.at(1, 1), 1.0);
}

TEST(MultiSeriesTest, SetWritesThrough) {
  MultiSeries series(2, 3);
  series.set(1, 2, 8.0);
  EXPECT_DOUBLE_EQ(series.at(1, 2), 8.0);
  EXPECT_DOUBLE_EQ(series.at(0, 2), 0.0);
}

}  // namespace
}  // namespace warp
