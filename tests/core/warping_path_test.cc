// Unit tests for WarpingPath invariants and utilities.

#include "warp/core/warping_path.h"

#include <gtest/gtest.h>

namespace warp {
namespace {

WarpingPath DiagonalPath(uint32_t n) {
  WarpingPath path;
  for (uint32_t k = 0; k < n; ++k) path.Append(k, k);
  return path;
}

TEST(WarpingPathTest, DiagonalPathIsValid) {
  EXPECT_TRUE(DiagonalPath(5).IsValid(5, 5));
}

TEST(WarpingPathTest, EmptyPathIsInvalid) {
  WarpingPath path;
  std::string error;
  EXPECT_FALSE(path.Validate(3, 3, &error));
  EXPECT_NE(error.find("empty"), std::string::npos);
}

TEST(WarpingPathTest, WrongStartIsInvalid) {
  WarpingPath path;
  path.Append(1, 0);
  path.Append(2, 1);
  std::string error;
  EXPECT_FALSE(path.Validate(3, 2, &error));
  EXPECT_NE(error.find("start"), std::string::npos);
}

TEST(WarpingPathTest, WrongEndIsInvalid) {
  WarpingPath path;
  path.Append(0, 0);
  path.Append(1, 1);
  EXPECT_FALSE(path.IsValid(3, 3));
}

TEST(WarpingPathTest, JumpStepIsInvalid) {
  WarpingPath path;
  path.Append(0, 0);
  path.Append(2, 2);  // Skips a row and a column.
  std::string error;
  EXPECT_FALSE(path.Validate(3, 3, &error));
  EXPECT_NE(error.find("illegal step"), std::string::npos);
}

TEST(WarpingPathTest, BackwardsStepIsInvalid) {
  WarpingPath path;
  path.Append(0, 0);
  path.Append(1, 1);
  path.Append(1, 0);  // Moves left.
  path.Append(2, 1);
  EXPECT_FALSE(path.IsValid(3, 2));
}

TEST(WarpingPathTest, StationaryStepIsInvalid) {
  WarpingPath path;
  path.Append(0, 0);
  path.Append(0, 0);
  path.Append(1, 1);
  EXPECT_FALSE(path.IsValid(2, 2));
}

TEST(WarpingPathTest, CostAlongDiagonal) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(DiagonalPath(3).CostAlong(x, y), 1.0);
  EXPECT_DOUBLE_EQ(DiagonalPath(3).CostAlong(x, y, CostKind::kAbsolute), 1.0);
}

TEST(WarpingPathTest, PerRowColumnRanges) {
  WarpingPath path;
  path.Append(0, 0);
  path.Append(0, 1);
  path.Append(1, 2);
  path.Append(2, 2);
  const auto ranges = path.PerRowColumnRanges(3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_EQ(ranges[1], (std::pair<uint32_t, uint32_t>{2, 2}));
  EXPECT_EQ(ranges[2], (std::pair<uint32_t, uint32_t>{2, 2}));
}

TEST(WarpingPathTest, MaxDiagonalDeviation) {
  WarpingPath path;
  path.Append(0, 0);
  path.Append(0, 1);
  path.Append(0, 2);
  path.Append(1, 3);
  EXPECT_EQ(path.MaxDiagonalDeviation(), 2u);
  EXPECT_EQ(DiagonalPath(4).MaxDiagonalDeviation(), 0u);
}

TEST(WarpingPathTest, ReverseReversesOrder) {
  WarpingPath path;
  path.Append(2, 2);
  path.Append(1, 1);
  path.Append(0, 0);
  path.Reverse();
  EXPECT_TRUE(path.IsValid(3, 3));
}

}  // namespace
}  // namespace warp
