// Preprocessor-aware C++ lexer for the repository linter.
//
// The grep rules this subsystem replaces (scripts/lint.sh before PR 7)
// matched raw lines, so a banned identifier inside a trailing comment or
// a string literal tripped them, and a real violation split across a
// line splice escaped them. This lexer produces the token stream the
// rules actually mean to inspect: comments and string/character literals
// (including raw strings) are consumed — never tokenized — line splices
// are transparent, and preprocessor directives are recognized so
// #include targets and macro bodies can be analyzed structurally.
//
// Scope: exactly what the lint rules need. No keyword table (keywords
// are identifiers), minimal multi-character punctuators ("::" is the
// only one the rules care about), no numeric-literal semantics. The
// lexer never fails: malformed input degrades to best-effort tokens so
// the analyzer can still report on the rest of the file.
//
// Suppression pragmas are collected during lexing: a comment carrying
// the "warp-lint" marker followed by a colon and an allow(...) rule list
// with a mandatory reason tail (exact syntax in docs/STATIC_ANALYSIS.md
// — not spelled here, where the literal form would itself parse as a
// pragma) suppresses matching findings on its own line — or, when the
// comment stands alone on its line, on the next line as well. The
// analyzer reports pragmas that are malformed, name unknown rules, or
// suppress nothing.

#ifndef WARP_LINTKIT_LEXER_H_
#define WARP_LINTKIT_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace warp {
namespace lintkit {

enum class TokenKind {
  kIdentifier,   // [A-Za-z_][A-Za-z0-9_]*
  kNumber,       // pp-number
  kString,       // text = contents without quotes/prefix (escapes raw)
  kCharLiteral,  // text = contents without quotes
  kPunct,        // single character, or "::"
  kDirective,    // the name after a line-initial '#': "include", "define", ...
  kHeaderName,   // the <...> target of an #include (text without brackets)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  size_t line = 0;  // 1-based physical line of the token's first character.
  size_t col = 0;   // 1-based column.
  bool in_directive = false;  // Part of a preprocessor directive.
};

// One #include directive, in source order.
struct IncludeDirective {
  std::string path;  // Target without delimiters, e.g. "warp/core/dtw.h".
  bool angled = false;
  size_t line = 0;
};

// One parsed suppression pragma (docs/STATIC_ANALYSIS.md).
struct AllowPragma {
  std::vector<std::string> rules;
  std::string reason;
  size_t line = 0;          // Line the comment starts on.
  bool covers_next = false; // Comment stood alone, so it covers line + 1.
  bool malformed = false;   // Marker seen but not parseable.
};

struct LexedFile {
  std::string path;  // Root-relative, '/'-separated.
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<AllowPragma> pragmas;
};

// Lexes `contents` (the full text of the file at `path`). Never fails.
LexedFile LexFile(std::string path, std::string_view contents);

}  // namespace lintkit
}  // namespace warp

#endif  // WARP_LINTKIT_LEXER_H_
