// Synthetic electrocardiogram generator.
//
// Heartbeats are the paper's leading example of Case A: beats are 120–200
// samples at clinically sufficient rates, their natural warping W is a
// few percent, and comparing multi-beat regions is meaningless ("it is
// never meaningful to compare ninety-eight heartbeats to one-hundred and
// three"). This generator produces morphologically plausible beats —
// P wave, QRS complex, T wave as parameterized Gaussians, the standard
// synthetic-ECG construction — with controllable rate variability and
// morphology classes (e.g. a "normal" and a "PVC-like" beat), so the
// classification, search, and monitoring stacks can be demonstrated on
// the domain the paper keeps returning to.

#ifndef WARP_GEN_ECG_H_
#define WARP_GEN_ECG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "warp/common/random.h"
#include "warp/ts/dataset.h"

namespace warp {
namespace gen {

// Morphology classes.
inline constexpr int kNormalBeatLabel = 0;
inline constexpr int kPvcBeatLabel = 1;  // Wide, early, no P wave.

struct EcgOptions {
  size_t beat_length = 160;     // Samples per beat (~250 Hz, ~96 bpm base).
  double rate_jitter = 0.05;    // Beat-to-beat length variation (fraction).
  double noise_stddev = 0.02;   // Baseline sensor noise.
  double pvc_probability = 0.0; // Share of PVC-like beats in rhythms.
  uint64_t seed = 13;
};

// One beat of exactly `options.beat_length` samples with the given
// morphology label, including timing jitter of the waves (the natural W).
std::vector<double> MakeBeat(int label, const EcgOptions& options, Rng& rng);

// A labeled dataset of single beats (Case A classification).
Dataset MakeBeatDataset(size_t per_class, const EcgOptions& options);

// A continuous rhythm of `num_beats` concatenated beats with rate
// variability; `beat_starts` (optional) receives each beat's onset and
// `beat_labels` each beat's morphology.
std::vector<double> MakeRhythm(size_t num_beats, const EcgOptions& options,
                               std::vector<size_t>* beat_starts = nullptr,
                               std::vector<int>* beat_labels = nullptr);

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_ECG_H_
