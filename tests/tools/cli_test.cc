// Integration tests for the command-line tools: spawn the real binaries
// against temp files and check their output contracts.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "warp/core/measure.h"
#include "warp/gen/gesture.h"
#include "warp/serve/wire.h"
#include "warp/ts/io.h"

namespace warp {
namespace {

// Binary locations injected by CMake.
#ifndef WARP_CLI_PATH
#error "WARP_CLI_PATH must be defined"
#endif
#ifndef UCR_RUNNER_PATH
#error "UCR_RUNNER_PATH must be defined"
#endif

std::string RunCommand(const std::string& command, int* exit_code) {
  const std::string full = command + " 2>/dev/null";
  FILE* pipe = popen(full.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  const int status = pclose(pipe);
  *exit_code = WEXITSTATUS(status);
  return output;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    // Two single series files.
    WriteSeries(dir_ + "/a.txt", {0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0});
    WriteSeries(dir_ + "/b.txt", {0.0, 0.0, 1.0, 2.0, 3.0, 2.0, 1.0});
    // A small UCR-format dataset pair.
    gen::GestureOptions options;
    options.length = 40;
    options.num_classes = 2;
    options.seed = 11;
    const Dataset pool = gen::MakeGestureDataset(6, options);
    const auto [train, test] = pool.StratifiedSplit(0.5);
    std::string error;
    ASSERT_TRUE(SaveUcrFile(dir_ + "/train.tsv", train, &error)) << error;
    ASSERT_TRUE(SaveUcrFile(dir_ + "/test.tsv", test, &error)) << error;
  }

  void WriteSeries(const std::string& path,
                   const std::vector<double>& values) {
    std::ofstream out(path);
    for (double v : values) out << v << "\n";
  }

  std::string dir_;
};

TEST_F(CliTest, DistCdtwAbsorbsShift) {
  int code = 0;
  const std::string out =
      RunCommand(std::string(WARP_CLI_PATH) + " dist " + dir_ +
                     "/a.txt " + dir_ + "/b.txt --measure=cdtw --window=0.2",
                 &code);
  EXPECT_EQ(code, 0);
  const double d = std::strtod(out.c_str(), nullptr);
  EXPECT_LT(d, 1.5);  // The one-step shift warps away almost fully.

  const std::string ed =
      RunCommand(std::string(WARP_CLI_PATH) + " dist " + dir_ +
                     "/a.txt " + dir_ + "/b.txt --measure=ed",
                 &code);
  EXPECT_GT(std::strtod(ed.c_str(), nullptr), d);
}

TEST_F(CliTest, DistFastDtwNeverBelowFullDtw) {
  int code = 0;
  const std::string full =
      RunCommand(std::string(WARP_CLI_PATH) + " dist " + dir_ +
                     "/a.txt " + dir_ + "/b.txt --measure=dtw",
                 &code);
  const std::string fast =
      RunCommand(std::string(WARP_CLI_PATH) + " dist " + dir_ +
                     "/a.txt " + dir_ + "/b.txt --measure=fastdtw --radius=1",
                 &code);
  EXPECT_GE(std::strtod(fast.c_str(), nullptr),
            std::strtod(full.c_str(), nullptr) - 1e-9);
}

TEST_F(CliTest, DistWithPathEmitsMonotonePath) {
  int code = 0;
  const std::string out =
      RunCommand(std::string(WARP_CLI_PATH) + " dist " + dir_ +
                     "/a.txt " + dir_ + "/b.txt --measure=dtw --path",
                 &code);
  EXPECT_EQ(code, 0);
  // First line is the distance; remaining lines are "i<TAB>j".
  std::istringstream stream(out);
  std::string line;
  ASSERT_TRUE(std::getline(stream, line));
  int prev_i = -1;
  int prev_j = -1;
  int rows = 0;
  while (std::getline(stream, line)) {
    int i = 0;
    int j = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "%d\t%d", &i, &j), 2) << line;
    EXPECT_GE(i, prev_i);
    EXPECT_GE(j, prev_j);
    prev_i = i;
    prev_j = j;
    ++rows;
  }
  EXPECT_GE(rows, 7);
  EXPECT_EQ(prev_i, 6);
  EXPECT_EQ(prev_j, 6);
}

TEST_F(CliTest, ClassifyReportsAccuracy) {
  int code = 0;
  const std::string out =
      RunCommand(std::string(WARP_CLI_PATH) + " classify " + dir_ +
                     "/train.tsv " + dir_ + "/test.tsv --window=0.1",
                 &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("accuracy\t"), std::string::npos);
  double accuracy = -1.0;
  std::sscanf(out.c_str(), "accuracy\t%lf", &accuracy);
  EXPECT_GE(accuracy, 0.5);
  EXPECT_LE(accuracy, 1.0);
}

TEST_F(CliTest, InfoSummarizesDataset) {
  int code = 0;
  const std::string out = RunCommand(
      std::string(WARP_CLI_PATH) + " info " + dir_ + "/train.tsv", &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("series\t6"), std::string::npos);
  EXPECT_NE(out.find("uniform_length\t40"), std::string::npos);
}

TEST_F(CliTest, ClusterEmitsNewickAndCut) {
  int code = 0;
  const std::string out =
      RunCommand(std::string(WARP_CLI_PATH) + " cluster " + dir_ +
                     "/train.tsv --k=2 --measure=cdtw --window=0.1",
                 &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find(';'), std::string::npos);  // Newick terminator.
  EXPECT_NE(out.find('('), std::string::npos);
}

TEST_F(CliTest, MeasuresJsonListsTheRegistry) {
  int code = 0;
  const std::string out = RunCommand(
      std::string(WARP_CLI_PATH) + " measures --json", &code);
  EXPECT_EQ(code, 0);

  serve::JsonValue root;
  std::string error;
  ASSERT_TRUE(serve::ParseJson(out, &root, &error)) << error << "\n" << out;
  ASSERT_TRUE(root.is_array());
  const auto& registry = RegisteredMeasures();
  ASSERT_EQ(root.AsArray().size(), registry.size());
  for (size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(root.AsArray()[i].StringOr("name", ""), registry[i].name);
    EXPECT_EQ(root.AsArray()[i].BoolOr("exact", !registry[i].exact),
              registry[i].exact);
    EXPECT_FALSE(root.AsArray()[i].StringOr("summary", "").empty());
  }
}

TEST_F(CliTest, UnknownCommandFails) {
  int code = 0;
  RunCommand(std::string(WARP_CLI_PATH) + " frobnicate", &code);
  EXPECT_NE(code, 0);
}

TEST_F(CliTest, UcrRunnerProducesRow) {
  // Lay out a miniature archive directory.
  const std::string archive = dir_ + "/archive";
  const std::string dataset_dir = archive + "/Mini";
  std::string error;
  ASSERT_EQ(std::system(("mkdir -p " + dataset_dir).c_str()), 0);
  Dataset train;
  Dataset test;
  ASSERT_TRUE(LoadUcrFile(dir_ + "/train.tsv", &train, &error)) << error;
  ASSERT_TRUE(LoadUcrFile(dir_ + "/test.tsv", &test, &error)) << error;
  ASSERT_TRUE(
      SaveUcrFile(dataset_dir + "/Mini_TRAIN.tsv", train, &error));
  ASSERT_TRUE(SaveUcrFile(dataset_dir + "/Mini_TEST.tsv", test, &error));

  int code = 0;
  const std::string out = RunCommand(
      std::string(UCR_RUNNER_PATH) + " " + archive + " Mini --max-window=10",
      &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("Mini"), std::string::npos);
  EXPECT_NE(out.find("ED err"), std::string::npos);
}

}  // namespace
}  // namespace warp
