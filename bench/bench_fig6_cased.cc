// Experiment E6 — paper Figs. 5 and 6 (Case D: long N, wide W).
//
// The "fall" thought experiment: early-fall vs late-fall traces of length
// L seconds at 100 Hz need ~100% warping to align, so cDTW must run
// unconstrained (cDTW_100). The paper sweeps L and finds the first length
// at which FastDTW_40 becomes faster than cDTW_100 (they report L = 4,
// N = 400) — the only crossover in the whole paper, and it occurs in a
// setting with no known real application. This harness reproduces the
// sweep for both FastDTW implementations and reports each crossover.
//
// Flags: --reps (20), --ref-reps (1), --radius (40), --max-seconds (64),
//        --skip-reference (false), --json=<path>.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/fall.h"
#include "warp/obs/report.h"

namespace warp {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int reps = static_cast<int>(flags.GetInt("reps", 20));
  const int ref_reps = static_cast<int>(flags.GetInt("ref-reps", 1));
  const size_t radius = static_cast<size_t>(flags.GetInt("radius", 40));
  const double max_seconds = flags.GetDouble("max-seconds", 64.0);
  const bool skip_reference = flags.GetBool("skip-reference", false);
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "E6 / Figs. 5-6",
      "Fall alignment (Case D): cDTW_100 vs FastDTW_40 as L grows");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("reps", reps);
  report.AddConfig("ref_reps", ref_reps);
  report.AddConfig("radius", static_cast<int64_t>(radius));
  report.AddConfig("max_seconds", max_seconds);
  report.AddConfig("skip_reference", skip_reference);

  PrintBanner("E6 / Figs. 5-6",
              "Fall alignment (Case D): cDTW_100 (unconstrained) vs "
              "FastDTW_40 as the window length L grows");

  TablePrinter table({"L (s)", "N", "cDTW_100 (ms)", "FastDTW_40 opt (ms)",
                      "FastDTW_40 ref (ms)", "fastest"});
  double crossover_optimized = -1.0;
  double crossover_reference = -1.0;
  Rng rng(4242);
  for (double seconds = 1.0; seconds <= max_seconds; seconds *= 2.0) {
    const auto [early, late] = gen::MakeFallPair(seconds, 100.0, rng);
    const std::string suffix = " L=" + TablePrinter::FormatDouble(seconds, 0);
    double checksum = 0.0;
    DtwBuffer buffer;
    const TimingSummary exact = report.MeasureCase(
        "cdtw_100" + suffix,
        [&] {
          checksum += CdtwDistance(early, late, early.size(),
                                   CostKind::kSquared, &buffer);
        },
        reps);
    const TimingSummary fast = report.MeasureCase(
        "fastdtw_opt" + suffix,
        [&] { checksum += FastDtwDistance(early, late, radius); }, reps);
    TimingSummary reference;
    if (!skip_reference) {
      reference = report.MeasureCase(
          "fastdtw_ref" + suffix,
          [&] {
            checksum += ReferenceFastDtw(early, late, radius).distance;
          },
          ref_reps, 0);
    }
    DoNotOptimize(checksum);

    if (fast.mean < exact.mean && crossover_optimized < 0.0) {
      crossover_optimized = seconds;
    }
    if (!skip_reference && reference.mean < exact.mean &&
        crossover_reference < 0.0) {
      crossover_reference = seconds;
    }
    const char* fastest = "cDTW_100";
    if (fast.mean < exact.mean) fastest = "FastDTW_40 (opt)";
    table.AddRow({TablePrinter::FormatDouble(seconds, 1),
                  std::to_string(early.size()),
                  TablePrinter::FormatDouble(exact.mean_millis(), 3),
                  TablePrinter::FormatDouble(fast.mean_millis(), 3),
                  skip_reference
                      ? std::string("-")
                      : TablePrinter::FormatDouble(reference.mean_millis(), 3),
                  fastest});
  }
  table.Print();

  if (crossover_optimized > 0.0) {
    std::printf(
        "\nOptimized FastDTW_40 first beats cDTW_100 at L = %.1f s "
        "(N = %.0f); the paper reports L = 4 s (N = 400).\n",
        crossover_optimized, crossover_optimized * 100.0);
  } else {
    std::printf("\nOptimized FastDTW_40 never beat cDTW_100 up to L = %.0f "
                "s.\n",
                max_seconds);
  }
  if (!skip_reference) {
    if (crossover_reference > 0.0) {
      std::printf("Reference FastDTW_40 first beats cDTW_100 at L = %.1f s "
                  "(N = %.0f).\n",
                  crossover_reference, crossover_reference * 100.0);
    } else {
      std::printf("Reference FastDTW_40 never beat cDTW_100 in this sweep "
                  "— its constants are that large.\n");
    }
  }
  std::printf(
      "The claim being reproduced: a crossover exists only in this "
      "contrived Case D, and even past it FastDTW_40 returns an "
      "*approximation* of the cDTW_100 answer.\n");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
