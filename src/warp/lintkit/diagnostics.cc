#include "warp/lintkit/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "warp/obs/json_writer.h"

namespace warp {
namespace lintkit {

namespace {

auto FindingKey(const Finding& f) {
  return std::tie(f.file, f.line, f.col, f.rule, f.message);
}

void WriteFinding(obs::JsonWriter& json, const Finding& finding) {
  json.BeginObject();
  json.Key("rule").String(finding.rule);
  json.Key("file").String(finding.file);
  json.Key("line").Uint(finding.line);
  json.Key("col").Uint(finding.col);
  json.Key("message").String(finding.message);
  json.EndObject();
}

}  // namespace

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return FindingKey(a) < FindingKey(b);
            });
}

std::string FormatFinding(const Finding& finding) {
  std::string out = finding.file;
  if (finding.line > 0) {
    out.append(":").append(std::to_string(finding.line));
    if (finding.col > 0) out.append(":").append(std::to_string(finding.col));
  }
  out.append(": [").append(finding.rule).append("] ").append(finding.message);
  return out;
}

std::string ToJson(const LintDocument& doc) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("schema").String("warp-lint-v1");
  json.Key("root").String(doc.root);
  json.Key("files_scanned").Uint(doc.files_scanned);
  json.Key("clean").Bool(doc.findings.empty() && doc.errors.empty());

  json.Key("rules").BeginArray();
  for (const RuleStatus& rule : doc.rules) {
    json.BeginObject();
    json.Key("id").String(rule.id);
    json.Key("summary").String(rule.summary);
    json.Key("cross_file").Bool(rule.cross_file);
    json.Key("enabled").Bool(rule.enabled);
    json.EndObject();
  }
  json.EndArray();

  json.Key("findings").BeginArray();
  for (const Finding& finding : doc.findings) WriteFinding(json, finding);
  json.EndArray();

  json.Key("suppressed").BeginArray();
  for (const SuppressedFinding& entry : doc.suppressed) {
    json.BeginObject();
    json.Key("rule").String(entry.finding.rule);
    json.Key("file").String(entry.finding.file);
    json.Key("line").Uint(entry.finding.line);
    json.Key("col").Uint(entry.finding.col);
    json.Key("message").String(entry.finding.message);
    json.Key("reason").String(entry.reason);
    json.Key("pragma_line").Uint(entry.pragma_line);
    json.EndObject();
  }
  json.EndArray();

  json.Key("errors").BeginArray();
  for (const std::string& error : doc.errors) json.String(error);
  json.EndArray();

  json.EndObject();
  return json.TakeOutput();
}

}  // namespace lintkit
}  // namespace warp
