// Parameterized property sweeps across the data generators: every
// generator must be deterministic per seed, produce the advertised
// shapes, and produce finite values, across a grid of lengths and seeds.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "warp/gen/chroma.h"
#include "warp/gen/ecg.h"
#include "warp/gen/gesture.h"
#include "warp/gen/power_demand.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/seismic.h"

namespace warp {
namespace gen {
namespace {

bool AllFinite(std::span<const double> values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

using GenParam = std::tuple<size_t, uint64_t>;

class GeneratorPropertyTest : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorPropertyTest, RandomWalkFiniteAndDeterministic) {
  const auto [length, seed] = GetParam();
  Rng a(seed);
  Rng b(seed);
  const std::vector<double> first = RandomWalk(length, a);
  EXPECT_EQ(first.size(), length);
  EXPECT_TRUE(AllFinite(first));
  EXPECT_EQ(first, RandomWalk(length, b));
}

TEST_P(GeneratorPropertyTest, GesturesFiniteAndClassStable) {
  const auto [length, seed] = GetParam();
  if (length < 8) GTEST_SKIP();
  GestureOptions options;
  options.length = length;
  options.seed = seed;
  Rng rng(seed);
  const TimeSeries gesture = MakeGesture(1, options, rng);
  EXPECT_EQ(gesture.size(), length);
  EXPECT_TRUE(AllFinite(gesture.view()));
  EXPECT_EQ(gesture.label(), 1);
  // Templates don't depend on the exemplar RNG state.
  EXPECT_EQ(GestureTemplate(1, length, seed),
            GestureTemplate(1, length, seed));
}

TEST_P(GeneratorPropertyTest, ChromaPairSizesAndFiniteness) {
  const auto [length, seed] = GetParam();
  if (length < 16) GTEST_SKIP();
  ChromaOptions options;
  options.length = length;
  options.seed = seed;
  const auto [studio, live] = MakePerformancePair(options);
  EXPECT_EQ(studio.size(), length);
  EXPECT_EQ(live.size(), length);
  EXPECT_TRUE(AllFinite(studio));
  EXPECT_TRUE(AllFinite(live));
}

TEST_P(GeneratorPropertyTest, EcgBeatsFiniteAndLabeled) {
  const auto [length, seed] = GetParam();
  if (length < 16) GTEST_SKIP();
  EcgOptions options;
  options.beat_length = length;
  options.seed = seed;
  Rng rng(seed);
  for (int label : {kNormalBeatLabel, kPvcBeatLabel}) {
    const std::vector<double> beat = MakeBeat(label, options, rng);
    EXPECT_EQ(beat.size(), length);
    EXPECT_TRUE(AllFinite(beat));
  }
}

TEST_P(GeneratorPropertyTest, PowerNightsFiniteAndNonNegativeBaseline) {
  const auto [length, seed] = GetParam();
  Rng rng(seed);
  const TimeSeries night = MakeQuietNight(length, rng);
  EXPECT_EQ(night.size(), length);
  EXPECT_TRUE(AllFinite(night.view()));
  EXPECT_GE(night.Min(), 0.0);  // Power demand cannot be negative.
}

TEST_P(GeneratorPropertyTest, SeismicTracesFinite) {
  const auto [length, seed] = GetParam();
  if (length < 100) GTEST_SKIP();
  SeismicOptions options;
  options.length = length;
  options.seed = seed;
  const auto [a, b] = MakeSeismicPair(options);
  EXPECT_TRUE(AllFinite(a));
  EXPECT_TRUE(AllFinite(b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(3, 17, 128, 1001),
                       ::testing::Values<uint64_t>(1, 42, 31337)));

}  // namespace
}  // namespace gen
}  // namespace warp
