// Fixture: an explained suppression. The include below violates
// chrono-containment, and the pragma both allows it and says why.
#include <chrono>  // warp-lint: allow(chrono-containment): fixture demonstrating an explained, audited suppression

namespace warp {
int MiningAnswer() { return 9; }
}  // namespace warp
