#include "warp/serve/server.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "warp/obs/exposition.h"
#include "warp/obs/histogram.h"
#include "warp/obs/json_writer.h"
#include "warp/obs/report.h"
#include "warp/common/metrics.h"
#include "warp/common/stopwatch.h"
#include "warp/serve/batcher.h"
#include "warp/serve/net.h"
#include "warp/serve/protocol.h"
#include "warp/serve/query_engine.h"
#include "warp/serve/result_cache.h"
#include "warp/serve/slowlog.h"
#include "warp/serve/snapshot.h"
#include "warp/ts/io.h"

namespace warp {
namespace serve {

namespace {

// How often the accept loop re-checks the shutdown flag.
constexpr int kAcceptPollMs = 100;

std::vector<size_t> BandsFromFractions(const std::vector<double>& fractions,
                                       size_t length) {
  std::vector<size_t> bands;
  if (length == 0) return bands;
  bands.reserve(fractions.size());
  for (double fraction : fractions) {
    if (fraction < 0.0) continue;
    bands.push_back(
        static_cast<size_t>(std::lround(fraction * static_cast<double>(length))));
  }
  return bands;
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        store(options.shards),
        cache(options.cache_capacity),
        slowlog(options.slowlog_capacity),
        engine(&store, options.cache_capacity > 0 ? &cache : nullptr,
               options.threads,
               options.slowlog_capacity > 0 ? &slowlog : nullptr),
        batcher(&engine, options.max_queue_depth) {}

  struct Connection {
    TcpConn conn;
    std::thread thread;
  };

  void HandleConnection(Connection* connection);
  std::string HandleControl(const ParsedLine& parsed);

  ServerOptions options;
  DatasetStore store;
  ResultCache cache;
  SlowQueryLog slowlog;
  QueryEngine engine;
  Batcher batcher;
  TcpListener listener;
  std::atomic<bool> shutdown{false};

  std::mutex conn_mutex;
  std::vector<std::unique_ptr<Connection>> connections;
};

std::string Server::Impl::HandleControl(const ParsedLine& parsed) {
  switch (parsed.control) {
    case ControlOp::kPing: {
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("ping")
          .EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kInfo: {
      std::shared_ptr<const StoredDataset> snapshot =
          store.Get(parsed.dataset);
      if (snapshot == nullptr) {
        return FormatErrorLine(parsed.id,
                               "unknown dataset: '" + parsed.dataset + "'");
      }
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("info")
          .Key("dataset").String(snapshot->name)
          .Key("size").Uint(snapshot->size())
          .Key("length").Uint(snapshot->uniform_length)
          .Key("epoch").Uint(snapshot->epoch)
          .Key("shards").Uint(snapshot->shard_count())
          .Key("port").Int(listener.port());
      if (options.worker_shard >= 0) {
        writer.Key("worker_shard").Int(options.worker_shard);
      }
      writer.Key("bands").BeginArray();
      for (size_t band : snapshot->bands) writer.Uint(band);
      writer.EndArray().EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kStats: {
      // "counters" comes from the process-wide obs registry; "cache"
      // comes from this server's ResultCache instance, which is the
      // single source of truth for its own behavior (the registry's
      // serve_cache_* counters aggregate across every cache in the
      // process and stay available via `metrics` and --profile, so they
      // are not duplicated here).
      const obs::MetricsSnapshot counters = obs::SnapshotCounters();
      const obs::HistogramSnapshot histograms = obs::SnapshotHistograms();
      const obs::GaugeSnapshot gauges = obs::SnapshotGauges();
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("stats")
          .Key("profiling").Bool(obs::kProfilingEnabled)
          .Key("counters").BeginObject();
      using obs::Counter;
      for (Counter counter : {Counter::kServeRequests, Counter::kServeBatches,
                              Counter::kServeBatchedQueries,
                              Counter::kServeDeadlineExceeded,
                              Counter::kServeShardScans,
                              Counter::kServeSnapshotSaves,
                              Counter::kServeSnapshotLoads,
                              Counter::kServeShed,
                              Counter::kClusterScatters,
                              Counter::kClusterWorkerRestarts,
                              Counter::kClusterPartialReplies}) {
        writer.Key(obs::CounterName(counter)).Uint(counters.Get(counter));
      }
      writer.EndObject()
          .Key("shards").BeginObject()
          .Key("count").Uint(store.shard_count())
          .EndObject()
          .Key("cache").BeginObject()
          .Key("size").Uint(cache.size())
          .Key("capacity").Uint(cache.capacity())
          .Key("hits").Uint(cache.hits())
          .Key("misses").Uint(cache.misses())
          .Key("evictions").Uint(cache.evictions())
          .EndObject()
          .Key("gauges").BeginObject();
      for (size_t g = 0; g < obs::kNumGauges; ++g) {
        const obs::Gauge gauge = static_cast<obs::Gauge>(g);
        writer.Key(obs::GaugeName(gauge)).Int(gauges.Get(gauge));
      }
      writer.EndObject().Key("histograms").BeginObject();
      for (size_t h = 0; h < obs::kNumHistograms; ++h) {
        const obs::Histogram histogram = static_cast<obs::Histogram>(h);
        const obs::HistogramData& data = histograms.Get(histogram);
        if (data.Empty()) continue;  // Sparse, like bench counters.
        writer.Key(obs::HistogramName(histogram));
        obs::WriteHistogramObject(writer, data);
      }
      writer.EndObject()
          .Key("slowlog").BeginObject()
          .Key("capacity").Uint(slowlog.capacity())
          .Key("pending").Uint(slowlog.size())
          .EndObject()
          .Key("datasets").BeginArray();
      for (const std::string& name : store.Names()) writer.String(name);
      writer.EndArray().EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kMetrics: {
      // The cache and slowlog readings ride along as "extras" — they
      // belong to this server's objects, not to a global registry.
      std::vector<obs::ExpositionExtra> extras;
      extras.push_back({"serve_result_cache_size", false,
                        static_cast<int64_t>(cache.size())});
      extras.push_back({"serve_result_cache_capacity", false,
                        static_cast<int64_t>(cache.capacity())});
      extras.push_back({"serve_result_cache_hits", true,
                        static_cast<int64_t>(cache.hits())});
      extras.push_back({"serve_result_cache_misses", true,
                        static_cast<int64_t>(cache.misses())});
      extras.push_back({"serve_result_cache_evictions", true,
                        static_cast<int64_t>(cache.evictions())});
      extras.push_back({"serve_slowlog_pending", false,
                        static_cast<int64_t>(slowlog.size())});
      const std::string body = obs::RenderMetricsText(
          obs::SnapshotCounters(), obs::SnapshotHistograms(),
          obs::SnapshotGauges(), extras);
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("metrics")
          .Key("format").String("warp-metrics-v1")
          .Key("body").String(body)
          .EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kSlowlog: {
      const std::vector<SlowQueryRecord> entries = slowlog.Drain();
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("slowlog")
          .Key("capacity").Uint(slowlog.capacity())
          .Key("entries").BeginArray();
      for (const SlowQueryRecord& record : entries) {
        writer.BeginObject()
            .Key("id").Int(record.id)
            .Key("op").String(record.op)
            .Key("dataset").String(record.dataset)
            .Key("measure").String(record.measure)
            .Key("engine_us").Double(record.engine_us)
            .Key("total_us").Double(record.total_us)
            .Key("cells").Uint(record.cells)
            .Key("scanned").Uint(record.scanned)
            .Key("total").Uint(record.total)
            .Key("partial").Bool(record.partial)
            .EndObject();
      }
      writer.EndArray().EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kLoad: {
      Dataset dataset;
      std::string error;
      if (!LoadUcrFile(parsed.path, &dataset, &error)) {
        // The ts/io error (missing file, truncated row, non-finite value)
        // goes back to the client verbatim instead of killing the server.
        return FormatErrorLine(parsed.id, "load failed: " + error);
      }
      const std::vector<double>& fractions = parsed.band_fractions.empty()
                                                 ? options.band_fractions
                                                 : parsed.band_fractions;
      const size_t length = dataset.UniformLength();
      std::shared_ptr<const StoredDataset> snapshot =
          store.Register(parsed.dataset, std::move(dataset),
                         BandsFromFractions(fractions, length));
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("load")
          .Key("dataset").String(snapshot->name)
          .Key("size").Uint(snapshot->size())
          .Key("length").Uint(snapshot->uniform_length)
          .Key("epoch").Uint(snapshot->epoch)
          .EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kSaveSnapshot: {
      std::shared_ptr<const StoredDataset> snapshot =
          store.Get(parsed.dataset);
      if (snapshot == nullptr) {
        return FormatErrorLine(parsed.id,
                               "unknown dataset: '" + parsed.dataset + "'");
      }
      std::string error;
      SnapshotMeta meta;
      if (!SaveSnapshot(*snapshot, parsed.path, &error, &meta)) {
        return FormatErrorLine(parsed.id, "save_snapshot failed: " + error);
      }
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("save_snapshot")
          .Key("dataset").String(meta.dataset)
          .Key("path").String(parsed.path)
          .Key("series").Uint(meta.series)
          .Key("payload_bytes").Uint(meta.payload_bytes)
          .EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kLoadSnapshot: {
      DatasetIndex index;
      SnapshotMeta meta;
      std::string error;
      if (!LoadSnapshot(parsed.path, &index, &meta, &error)) {
        // Refuse-don't-guess: the snapshot layer's precise reason goes
        // back to the client; the store is untouched.
        return FormatErrorLine(parsed.id, "load_snapshot failed: " + error);
      }
      const std::string name =
          parsed.dataset.empty() ? meta.dataset : parsed.dataset;
      std::shared_ptr<const StoredDataset> snapshot =
          store.RegisterIndex(name, std::move(index));
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("load_snapshot")
          .Key("dataset").String(snapshot->name)
          .Key("size").Uint(snapshot->size())
          .Key("length").Uint(snapshot->uniform_length)
          .Key("epoch").Uint(snapshot->epoch)
          .Key("shards").Uint(snapshot->shard_count())
          .EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kShutdown: {
      obs::JsonWriter writer;
      writer.BeginObject()
          .Key("id").Int(parsed.id)
          .Key("ok").Bool(true)
          .Key("op").String("shutdown")
          .EndObject();
      return writer.TakeOutput();
    }
    case ControlOp::kNone:
      break;
  }
  return FormatErrorLine(parsed.id, "internal: unhandled control op");
}

void Server::Impl::HandleConnection(Connection* connection) {
  WARP_GAUGE_ADD(obs::Gauge::kServeOpenConnections, 1);
  std::string first;
  while (!shutdown.load(std::memory_order_relaxed) &&
         connection->conn.ReadLine(&first)) {
    // Drain everything the client has already pipelined: those lines form
    // one batch, which is where the batcher's group commit pays off.
    std::vector<std::string> lines;
    lines.push_back(std::move(first));
    while (connection->conn.HasBufferedLine()) {
      std::string more;
      if (!connection->conn.ReadLine(&more)) break;
      lines.push_back(std::move(more));
    }

    // Lines take effect strictly in order: runs of consecutive queries
    // form one engine batch, and a control op (stats, load, shutdown)
    // flushes the pending batch first so it observes every query that
    // preceded it on the wire.
    std::vector<std::string> out(lines.size());
    std::vector<ServeRequest> queries;
    std::vector<size_t> query_slot;
    std::vector<double> query_parse_us;  // Parallel to `queries`.
    const auto flush_queries = [&] {
      if (queries.empty()) return;
      std::vector<ServeResponse> responses;
      batcher.Execute(queries, &responses);
      for (size_t j = 0; j < responses.size(); ++j) {
        responses[j].trace.parse_us = query_parse_us[j];
        out[query_slot[j]] = FormatResponse(responses[j]);
      }
      queries.clear();
      query_slot.clear();
      query_parse_us.clear();
    };
    bool want_shutdown = false;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].empty()) continue;  // Blank lines are keep-alives.
      ParsedLine parsed;
      std::string error;
      const Stopwatch parse_watch;
      const bool parsed_ok = ParseRequestLine(lines[i], &parsed, &error);
      const double parse_us = parse_watch.ElapsedMicros();
      WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeStageParse, parse_us);
      if (!parsed_ok) {
        out[i] = FormatErrorLine(parsed.id, error);
      } else if (parsed.control == ControlOp::kNone &&
                 options.worker_shard >= 0 &&
                 parsed.request.shard_filter != options.worker_shard) {
        // Shard workers answer only sub-scans stamped for their own
        // shard: a mis-routed (or unstamped) query would silently cover
        // the wrong candidate set, so it is refused instead.
        out[i] = FormatErrorLine(
            parsed.id,
            "mis-routed sub-scan: this worker serves shard " +
                std::to_string(options.worker_shard) + " of " +
                std::to_string(options.shards) + ", request stamped " +
                (parsed.request.shard_filter < 0
                     ? std::string("no shard")
                     : "shard " +
                           std::to_string(parsed.request.shard_filter)));
      } else if (parsed.control == ControlOp::kNone) {
        queries.push_back(std::move(parsed.request));
        query_slot.push_back(i);
        query_parse_us.push_back(parse_us);
      } else {
        flush_queries();
        out[i] = HandleControl(parsed);
        if (parsed.control == ControlOp::kShutdown) want_shutdown = true;
      }
    }
    flush_queries();

    std::string payload;
    for (const std::string& response : out) {
      if (response.empty()) continue;
      payload += response;
      payload += '\n';
    }
    if (!payload.empty() && !connection->conn.WriteAll(payload)) break;
    if (want_shutdown) {
      shutdown.store(true, std::memory_order_relaxed);
      break;
    }
  }
  connection->conn.ShutdownBoth();
  WARP_GAUGE_ADD(obs::Gauge::kServeOpenConnections, -1);
}

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  RequestShutdown();
  std::lock_guard<std::mutex> lock(impl_->conn_mutex);
  for (std::unique_ptr<Impl::Connection>& connection : impl_->connections) {
    connection->conn.ShutdownBoth();
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void Server::RegisterDataset(const std::string& name, Dataset dataset) {
  const size_t length = dataset.UniformLength();
  impl_->store.Register(
      name, std::move(dataset),
      BandsFromFractions(impl_->options.band_fractions, length));
}

bool Server::LoadDataset(const std::string& name, const std::string& path,
                         const std::vector<double>& band_fractions,
                         std::string* error) {
  Dataset dataset;
  if (!LoadUcrFile(path, &dataset, error)) return false;
  const std::vector<double>& fractions = band_fractions.empty()
                                             ? impl_->options.band_fractions
                                             : band_fractions;
  const size_t length = dataset.UniformLength();
  impl_->store.Register(name, std::move(dataset),
                        BandsFromFractions(fractions, length));
  return true;
}

bool Server::LoadSnapshotFile(const std::string& name,
                              const std::string& path, std::string* error) {
  DatasetIndex index;
  SnapshotMeta meta;
  if (!LoadSnapshot(path, &index, &meta, error)) return false;
  impl_->store.RegisterIndex(name.empty() ? meta.dataset : name,
                             std::move(index));
  return true;
}

bool Server::LoadSnapshotDir(const std::string& dir, std::string* error) {
  std::vector<std::string> paths;
  if (!ListSnapshotFiles(dir, &paths, error)) return false;
  for (const std::string& path : paths) {
    if (!LoadSnapshotFile("", path, error)) return false;
  }
  return true;
}

bool Server::Start(std::string* error) {
  return impl_->listener.Listen(impl_->options.port, error);
}

int Server::port() const { return impl_->listener.port(); }

void Server::Serve() {
  while (!impl_->shutdown.load(std::memory_order_relaxed)) {
    bool timed_out = false;
    TcpConn conn = impl_->listener.AcceptWithTimeout(kAcceptPollMs, &timed_out);
    if (!conn.valid()) {
      if (timed_out) continue;
      break;  // Listener closed or failed.
    }
    auto connection = std::make_unique<Impl::Connection>();
    connection->conn = std::move(conn);
    Impl::Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] {
      impl_->HandleConnection(raw);
    });
    std::lock_guard<std::mutex> lock(impl_->conn_mutex);
    impl_->connections.push_back(std::move(connection));
  }

  impl_->listener.Close();
  std::lock_guard<std::mutex> lock(impl_->conn_mutex);
  for (std::unique_ptr<Impl::Connection>& connection : impl_->connections) {
    connection->conn.ShutdownBoth();
    if (connection->thread.joinable()) connection->thread.join();
  }
  impl_->connections.clear();
}

void Server::RequestShutdown() {
  impl_->shutdown.store(true, std::memory_order_relaxed);
}

const DatasetStore& Server::store() const { return impl_->store; }

int RunServer(Server* server) {
  std::string error;
  if (!server->Start(&error)) {
    std::fprintf(stderr, "warp_serve: %s\n", error.c_str());
    return 1;
  }
  std::printf("warp_serve listening on 127.0.0.1:%d\n", server->port());
  // Machine-scrapable readiness line: harnesses and the cluster
  // supervisor parse this exact shape to learn a --port=0 binding.
  std::printf("ready port=%d\n", server->port());
  std::fflush(stdout);
  server->Serve();
  return 0;
}

}  // namespace serve
}  // namespace warp
