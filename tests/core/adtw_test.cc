// Unit and property tests for Amerced DTW.

#include "warp/core/adtw.h"

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

TEST(AdtwTest, ZeroPenaltyIsExactlyDtw) {
  Rng rng(281);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 2 + rng.UniformInt(60);
    const size_t m = 2 + rng.UniformInt(60);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    EXPECT_NEAR(AdtwDistance(x, y, 0.0), DtwDistance(x, y), 1e-9);
  }
}

TEST(AdtwTest, HugePenaltyIsEuclideanOnEqualLengths) {
  Rng rng(282);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(50, rng));
  const std::vector<double> y = ZNormalized(gen::RandomWalk(50, rng));
  EXPECT_NEAR(AdtwDistance(x, y, 1e12), EuclideanDistance(x, y), 1e-6);
}

TEST(AdtwTest, MonotoneNonDecreasingInOmega) {
  Rng rng(283);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(64, rng));
  const std::vector<double> y = ZNormalized(gen::RandomWalk(64, rng));
  double previous = AdtwDistance(x, y, 0.0);
  for (double omega : {0.001, 0.01, 0.1, 1.0, 10.0}) {
    const double d = AdtwDistance(x, y, omega);
    EXPECT_GE(d, previous - 1e-12) << "omega=" << omega;
    previous = d;
  }
}

TEST(AdtwTest, SandwichedBetweenDtwAndEuclidean) {
  Rng rng(284);
  for (int round = 0; round < 20; ++round) {
    const std::vector<double> x = ZNormalized(gen::RandomWalk(40, rng));
    const std::vector<double> y = ZNormalized(gen::RandomWalk(40, rng));
    const double omega = rng.Uniform(0.0, 2.0);
    const double adtw = AdtwDistance(x, y, omega);
    EXPECT_GE(adtw, DtwDistance(x, y) - 1e-12);
    EXPECT_LE(adtw, EuclideanDistance(x, y) + 1e-12);
  }
}

TEST(AdtwTest, SymmetricInArguments) {
  Rng rng(285);
  const std::vector<double> x = gen::RandomWalk(30, rng);
  const std::vector<double> y = gen::RandomWalk(45, rng);
  EXPECT_NEAR(AdtwDistance(x, y, 0.5), AdtwDistance(y, x, 0.5), 1e-9);
}

TEST(AdtwTest, SelfDistanceZeroForAnyOmega) {
  Rng rng(286);
  const std::vector<double> x = gen::RandomWalk(50, rng);
  for (double omega : {0.0, 0.5, 100.0}) {
    EXPECT_NEAR(AdtwDistance(x, x, omega), 0.0, 1e-12);
  }
}

TEST(AdtwTest, PenaltyChargedPerNonDiagonalStep) {
  // Singleton vs pair: the path must take exactly one non-diagonal step.
  const std::vector<double> x = {3.0};
  const std::vector<double> y = {3.0, 3.0};
  EXPECT_DOUBLE_EQ(AdtwDistance(x, y, 0.25), 0.25);
}

TEST(AdtwTest, SuggestOmegaScalesWithRatio) {
  Rng rng(287);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(64, rng));
  const std::vector<double> y = ZNormalized(gen::RandomWalk(64, rng));
  EXPECT_DOUBLE_EQ(SuggestAdtwOmega(x, y, 0.0), 0.0);
  EXPECT_NEAR(SuggestAdtwOmega(x, y, 1.0),
              EuclideanDistance(x, y) / 64.0, 1e-12);
  EXPECT_NEAR(SuggestAdtwOmega(x, y, 0.5),
              0.5 * SuggestAdtwOmega(x, y, 1.0), 1e-12);
}

}  // namespace
}  // namespace warp
