#include "warp/obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "warp/common/assert.h"

namespace warp {
namespace obs {

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  done_ = false;  // The container completes at its EndObject().
  out_.push_back('{');
  stack_.push_back(Scope{/*is_object=*/true, /*has_items=*/false});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  WARP_CHECK(!stack_.empty() && stack_.back().is_object);
  WARP_CHECK(!pending_key_);
  out_.push_back('}');
  stack_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  done_ = false;  // The container completes at its EndArray().
  out_.push_back('[');
  stack_.push_back(Scope{/*is_object=*/false, /*has_items=*/false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  WARP_CHECK(!stack_.empty() && !stack_.back().is_object);
  out_.push_back(']');
  stack_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  WARP_CHECK(!stack_.empty() && stack_.back().is_object);
  WARP_CHECK(!pending_key_);
  if (stack_.back().has_items) out_.push_back(',');
  stack_.back().has_items = true;
  out_.push_back('"');
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_ += FormatDouble(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

const std::string& JsonWriter::TakeOutput() {
  WARP_CHECK(done_ && stack_.empty() && !pending_key_);
  return out_;
}

void JsonWriter::BeforeValue() {
  WARP_CHECK(!done_);  // Only one top-level value per document.
  if (stack_.empty()) {
    // Top-level value: nothing to separate, and a scalar here is already
    // a complete document (Begin* resets done_ until its matching End*).
    done_ = true;
    return;
  }
  if (stack_.back().is_object) {
    // Inside an object a value must follow a Key() (which already wrote
    // the separator and colon).
    WARP_CHECK(pending_key_);
    pending_key_ = false;
    return;
  }
  if (stack_.back().has_items) out_.push_back(',');
  stack_.back().has_items = true;
}

std::string JsonWriter::Escape(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\b':
        escaped += "\\b";
        break;
      case '\f':
        escaped += "\\f";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer;
        } else {
          // Includes UTF-8 multibyte sequences, passed through verbatim —
          // JSON strings are Unicode and need no \u escaping for them.
          escaped.push_back(c);
        }
        break;
    }
  }
  return escaped;
}

std::string JsonWriter::FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

}  // namespace obs
}  // namespace warp
