#ifndef WARP_CORE_ENGINE_H_
#define WARP_CORE_ENGINE_H_

namespace warp {
int EngineAnswer();
}  // namespace warp

#endif  // WARP_CORE_ENGINE_H_
