// Unit tests for DTW Barycenter Averaging.

#include "warp/mining/dba.h"

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/gesture.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"

namespace warp {
namespace {

TEST(DbaTest, SingleSeriesIsItsOwnBarycenter) {
  const std::vector<std::vector<double>> series = {{1.0, 2.0, 3.0}};
  const DbaResult result = DtwBarycenterAverage(series);
  EXPECT_EQ(result.barycenter, series[0]);
  EXPECT_NEAR(result.total_cost, 0.0, 1e-12);
}

TEST(DbaTest, IdenticalSeriesYieldThatSeries) {
  const std::vector<double> x = {0.0, 1.0, 4.0, 1.0};
  const std::vector<std::vector<double>> series = {x, x, x};
  const DbaResult result = DtwBarycenterAverage(series);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(result.barycenter[i], x[i], 1e-9);
  }
}

TEST(DbaTest, ReducesTotalCostVersusMedoid) {
  Rng rng(131);
  const std::vector<double> base = gen::RandomWalk(60, rng);
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 5; ++i) {
    series.push_back(gen::ApplyRandomWarp(base, 0.08, rng));
  }
  // Total cost of the best single member (the medoid criterion).
  double best_member_cost = 1e300;
  for (const auto& candidate : series) {
    double cost = 0.0;
    for (const auto& other : series) cost += DtwDistance(candidate, other);
    best_member_cost = std::min(best_member_cost, cost);
  }
  DbaOptions options;
  options.iterations = 10;
  const DbaResult result = DtwBarycenterAverage(series, options);
  EXPECT_LE(result.total_cost, best_member_cost + 1e-9);
  EXPECT_GE(result.iterations_run, 1u);
}

TEST(DbaTest, RespectsIterationBudget) {
  Rng rng(132);
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 4; ++i) series.push_back(gen::RandomWalk(40, rng));
  DbaOptions options;
  options.iterations = 2;
  options.convergence_threshold = 0.0;
  const DbaResult result = DtwBarycenterAverage(series, options);
  EXPECT_LE(result.iterations_run, 2u);
}

TEST(DbaTest, BandedVariantWorks) {
  Rng rng(133);
  const std::vector<double> base = gen::RandomWalk(50, rng);
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 3; ++i) {
    series.push_back(gen::ApplyRandomWarp(base, 0.05, rng));
  }
  DbaOptions options;
  options.band = 5;
  const DbaResult result = DtwBarycenterAverage(series, options);
  EXPECT_EQ(result.barycenter.size(), 50u);
  EXPECT_GT(result.total_cost, 0.0);
}

TEST(DbaTest, BarycenterLengthMatchesInitialMedoid) {
  Rng rng(134);
  std::vector<std::vector<double>> series = {gen::RandomWalk(30, rng),
                                             gen::RandomWalk(30, rng),
                                             gen::RandomWalk(30, rng)};
  const DbaResult result = DtwBarycenterAverage(series);
  EXPECT_EQ(result.barycenter.size(), 30u);
}

}  // namespace
}  // namespace warp
