#include "warp/serve/query_engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <utility>

#include "warp/common/assert.h"
#include "warp/common/stopwatch.h"
#include "warp/core/dtw.h"
#include "warp/core/envelope.h"
#include "warp/core/lower_bounds.h"
#include "warp/mining/similarity_search.h"
#include "warp/common/metrics.h"
#include "warp/obs/histogram.h"
#include "warp/simd/batch.h"
#include "warp/simd/dispatch.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Candidates per scan chunk. Fixed (never derived from the thread count),
// so chunk boundaries — and therefore the chunk-order merge — are
// identical at any parallelism.
constexpr size_t kScanGrain = 8;

// The endpoint cost LB_Kim is built from; inlined here so the cascade's
// first rung reads only the store's head/tail caches.
double PointCost(double a, double b, CostKind kind) {
  const double d = a - b;
  return kind == CostKind::kAbsolute ? std::fabs(d) : d * d;
}

// (distance, index) lexicographic order: the scan's total order. Ties on
// distance go to the earlier series, matching a serial first-wins scan.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

// Per-request deadline state shared across scan workers. `expired` is
// monotone: once set, chunks stop scanning new candidates (their already
// scanned prefix stays in the merge, so the partial answer is exact over
// `scanned` candidates).
struct Deadline {
  bool enabled = false;
  double budget_ms = 0.0;
  Stopwatch watch;
  std::atomic<bool> expired{false};

  bool Expired() {
    if (!enabled) return false;
    if (expired.load(std::memory_order_relaxed)) return true;
    if (watch.ElapsedMillis() > budget_ms) {
      expired.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

// Monotone shared upper bound for cross-chunk pruning. Only ever
// decreases; pruning tests are STRICT (lb > bound), so a candidate tying
// the final best is never pruned and the (distance, index) winner is
// scheduling-independent.
struct SharedBound {
  std::atomic<double> value{kInf};

  double Get() const { return value.load(std::memory_order_relaxed); }

  void Lower(double candidate) {
    double current = value.load(std::memory_order_relaxed);
    while (candidate < current &&
           !value.compare_exchange_weak(current, candidate,
                                        std::memory_order_relaxed)) {
    }
  }
};

// Chunk-local result accumulator: bounded top-k for 1nn/knn, unbounded
// match list for range.
struct ChunkHits {
  std::vector<Neighbor> hits;  // Sorted by NeighborLess for top-k mode.
  uint64_t scanned = 0;

  void AddTopK(const Neighbor& n, size_t k) {
    const auto pos =
        std::lower_bound(hits.begin(), hits.end(), n, NeighborLess);
    if (hits.size() == k && pos == hits.end()) return;
    hits.insert(pos, n);
    if (hits.size() > k) hits.pop_back();
  }

  double KthBound(size_t k) const {
    return hits.size() == k ? hits.back().distance : kInf;
  }
};

}  // namespace

struct QueryEngine::Impl {
  const DatasetStore* store;
  ResultCache* cache;
  SlowQueryLog* slowlog;
  std::unique_ptr<ThreadPool> pool;  // Null when threads == 1.
  PerThread<DtwWorkspace> workspaces;

  Impl(const DatasetStore* store_in, ResultCache* cache_in, size_t threads,
       SlowQueryLog* slowlog_in)
      : store(store_in),
        cache(cache_in),
        slowlog(slowlog_in),
        pool(ResolveThreadCount(threads) > 1
                 ? std::make_unique<ThreadPool>(ResolveThreadCount(threads))
                 : nullptr),
        workspaces(pool ? pool->size() : 1) {}

  size_t Threads() const { return pool ? pool->size() : 1; }

  // How a scan executes: on `pool` with per-worker workspaces, or inline
  // on the calling thread pinned to workspace slot `fixed_worker`.
  struct ExecContext {
    ThreadPool* pool = nullptr;
    size_t fixed_worker = 0;
  };

  DtwWorkspace& WorkspaceFor(const ExecContext& ctx, size_t worker) {
    return workspaces[ctx.pool != nullptr ? worker : ctx.fixed_worker];
  }

  // One shard's share of a scan plan. `chunk_offset` indexes the shard's
  // first chunk inside the plan-wide `chunks` array, which is laid out
  // shard-major (all of shard 0's chunks, then shard 1's, ...): a fixed
  // ordering derived only from the dataset's sharded layout, never from
  // scheduling, so the gather merge walks it identically at any thread
  // count.
  struct ShardSlice {
    const ShardedDataset* shard = nullptr;
    size_t chunk_offset = 0;
  };

  // One scan request decomposed for chunk-level execution: Prepare (once,
  // serial — z-norm, query envelope, registry resolution), ScanRange (any
  // worker, any order, any interleaving with other plans' chunks), Merge
  // (once, serial, fixed chunk order). The decomposition is what lets
  // RunBatch flatten a whole group of requests into one (request, chunk)
  // work list without changing any answer: chunk boundaries and merge
  // order never depend on scheduling. Since PR 9 the prepared chunks
  // SCATTER across the dataset's shards (each chunk is a contiguous run
  // of one shard's local candidates) and the merge GATHERS them in
  // shard-major chunk order — sharding only re-arranges which chunk a
  // candidate lands in, so with the strict pruning rules below the
  // answer stays bitwise-identical at any shard count.
  struct ScanPlan {
    size_t slot = 0;  // Batch response index (RunBatch bookkeeping).
    const ServeRequest* request = nullptr;
    const StoredDataset* stored = nullptr;
    std::string cache_key;

    std::vector<double> query;
    bool cascade = false;
    bool is_range = false;
    size_t k = 1;
    size_t band = 0;
    Envelope query_envelope;
    size_t band_slot = StoredDataset::kNoBand;  // Candidate envelope slot.
    SeriesMeasure measure;  // Brute-force path only.

    Deadline deadline;
    SharedBound shared;  // 1nn cross-chunk bound; unused for knn/range.
    std::vector<ShardSlice> slices;  // One per shard, in shard order.
    std::vector<ChunkHits> chunks;   // Shard-major.

    // Telemetry accumulated across chunks. Integer nanoseconds and cell
    // counts merge by commutative fetch_add, so the totals are
    // scheduling-independent aside from the wall-clock readings
    // themselves (which never enter goldens or the cache key).
    std::atomic<uint64_t> engine_nanos{0};
    std::atomic<uint64_t> dtw_cells{0};
    double cache_us = 0.0;  // Lookup-miss time, stamped by the caller.
  };

  // RAII chunk attribution: on destruction, adds the chunk's wall time
  // and the calling thread's dtw_cells delta to the plan's totals. Two
  // relaxed loads and two fetch_adds per kScanGrain candidates — far
  // below the cost of the cells themselves.
  struct ChunkWork {
    ScanPlan& plan;
    uint64_t cells_before;
    Stopwatch watch;

    explicit ChunkWork(ScanPlan& plan_in)
        : plan(plan_in),
          cells_before(obs::LocalCount(obs::Counter::kDtwCells)) {}
    ~ChunkWork() {
      plan.engine_nanos.fetch_add(
          static_cast<uint64_t>(watch.ElapsedSeconds() * 1e9),
          std::memory_order_relaxed);
      plan.dtw_cells.fetch_add(
          obs::LocalCount(obs::Counter::kDtwCells) - cells_before,
          std::memory_order_relaxed);
    }
  };

  static ServeResponse ErrorResponse(const ServeRequest& request,
                                     std::string message) {
    ServeResponse response;
    response.id = request.id;
    response.op = request.op;
    response.ok = false;
    response.error = std::move(message);
    return response;
  }

  // Request-wide validation shared by Run and RunBatch. Returns true and
  // fills *snapshot on success, else fills *failure.
  bool Resolve(const ServeRequest& request,
               std::shared_ptr<const StoredDataset>* snapshot,
               ServeResponse* failure) {
    if (!IsRegisteredMeasure(request.measure)) {
      *failure = ErrorResponse(request, "unknown measure: " + request.measure +
                                            " (expected one of " +
                                            RegisteredMeasureNames() + ")");
      return false;
    }
    *snapshot = store->Get(request.dataset);
    if (*snapshot == nullptr) {
      *failure = ErrorResponse(request,
                               "unknown dataset: " + request.dataset);
      return false;
    }
    if (request.query.empty()) {
      *failure = ErrorResponse(request, "request has no query values");
      return false;
    }
    for (const double v : request.query) {
      if (!std::isfinite(v)) {
        *failure = ErrorResponse(request, "query contains a non-finite value");
        return false;
      }
    }
    if ((request.op == QueryOp::kDist ||
         request.op == QueryOp::kSubsequence) &&
        request.index >= (*snapshot)->size()) {
      *failure = ErrorResponse(
          request, "series index " + std::to_string(request.index) +
                       " out of range (dataset has " +
                       std::to_string((*snapshot)->size()) + " series)");
      return false;
    }
    if (request.op == QueryOp::kKnn && request.k == 0) {
      *failure = ErrorResponse(request, "knn requires k >= 1");
      return false;
    }
    if (request.op == QueryOp::kRange && !std::isfinite(request.threshold)) {
      *failure = ErrorResponse(request, "range requires a finite threshold");
      return false;
    }
    // Cluster scatter stamp: refuse mis-routed or stale sub-scans rather
    // than answer over the wrong candidates. The router retries against a
    // fresh epoch; a worker never guesses.
    if (request.require_epoch != 0 &&
        request.require_epoch != (*snapshot)->epoch) {
      *failure = ErrorResponse(
          request, "epoch mismatch: dataset '" + request.dataset +
                       "' is at epoch " + std::to_string((*snapshot)->epoch) +
                       ", request requires " +
                       std::to_string(request.require_epoch));
      return false;
    }
    if (request.shard_filter >= 0) {
      const size_t shard = static_cast<size_t>(request.shard_filter);
      if (shard >= (*snapshot)->shard_count()) {
        *failure = ErrorResponse(
            request, "shard " + std::to_string(shard) +
                         " out of range (dataset has " +
                         std::to_string((*snapshot)->shard_count()) +
                         " shards)");
        return false;
      }
      if ((request.op == QueryOp::kDist ||
           request.op == QueryOp::kSubsequence) &&
          (*snapshot)->router.ShardOf(request.index) != shard) {
        *failure = ErrorResponse(
            request,
            "series " + std::to_string(request.index) + " is owned by shard " +
                std::to_string((*snapshot)->router.ShardOf(request.index)) +
                ", not shard " + std::to_string(shard));
        return false;
      }
    }
    return true;
  }

  // The Sakoe–Chiba half-width this request resolves to against a series
  // of length `other`, mirroring the measure registry's rule.
  static size_t ResolveBand(const ServeRequest& request, size_t other) {
    if (request.params.band_cells >= 0) {
      return static_cast<size_t>(request.params.band_cells);
    }
    const size_t longer = std::max(request.query.size(), other);
    const long band = std::lround(request.params.window_fraction *
                                  static_cast<double>(longer));
    return band < 0 ? 0 : static_cast<size_t>(band);
  }

  static bool IsScanOp(QueryOp op) {
    return op == QueryOp::k1Nn || op == QueryOp::kKnn ||
           op == QueryOp::kRange;
  }

  ServeResponse Execute(const ServeRequest& request,
                        const StoredDataset& stored, const ExecContext& ctx) {
    switch (request.op) {
      case QueryOp::kDist:
        return ExecuteDist(request, stored);
      case QueryOp::kSubsequence:
        return ExecuteSubsequence(request, stored);
      case QueryOp::k1Nn:
      case QueryOp::kKnn:
      case QueryOp::kRange:
        return ExecuteScan(request, stored, ctx);
    }
    return ErrorResponse(request, "unhandled operation");
  }

  ServeResponse ExecuteDist(const ServeRequest& request,
                            const StoredDataset& stored) {
    const uint64_t cells_before = obs::LocalCount(obs::Counter::kDtwCells);
    const Stopwatch watch;
    const std::vector<double> query = PrepareQuery(request);
    const SeriesMeasure measure =
        MakeMeasure(request.measure, request.params);
    ServeResponse response;
    response.id = request.id;
    response.op = request.op;
    response.ok = true;
    response.scanned = response.total = 1;
    response.distance = measure(query, stored.SeriesAt(request.index).view());
    response.trace.engine_us = watch.ElapsedMicros();
    response.trace.cells =
        obs::LocalCount(obs::Counter::kDtwCells) - cells_before;
    return response;
  }

  ServeResponse ExecuteSubsequence(const ServeRequest& request,
                                   const StoredDataset& stored) {
    const uint64_t cells_before =
        obs::LocalCount(obs::Counter::kSubsequenceCells);
    const Stopwatch watch;
    const std::vector<double> query = PrepareQuery(request);
    const TimeSeries& haystack = stored.SeriesAt(request.index);
    if (haystack.size() < query.size()) {
      return ErrorResponse(request,
                           "query longer than target series " +
                               std::to_string(request.index));
    }
    const size_t band = ResolveBand(request, query.size());
    const SubsequenceMatch match = FindBestMatch(
        haystack.view(), query, band, request.params.cost, nullptr);
    ServeResponse response;
    response.id = request.id;
    response.op = request.op;
    response.ok = true;
    response.scanned = response.total = haystack.size() - query.size() + 1;
    response.position = match.position;
    response.distance = match.distance;
    response.trace.engine_us = watch.ElapsedMicros();
    response.trace.cells =
        obs::LocalCount(obs::Counter::kSubsequenceCells) - cells_before;
    return response;
  }

  std::vector<double> PrepareQuery(const ServeRequest& request) {
    if (!request.znormalize) return request.query;
    return ZNormalized(request.query);
  }

  std::unique_ptr<ScanPlan> PrepareScan(const ServeRequest& request,
                                        const StoredDataset& stored) {
    auto plan = std::make_unique<ScanPlan>();
    plan->request = &request;
    plan->stored = &stored;
    plan->query = PrepareQuery(request);
    plan->k = request.op == QueryOp::kKnn ? request.k : 1;
    plan->is_range = request.op == QueryOp::kRange;

    // Exact-cDTW cascade only applies in the equal-length 1-NN setting;
    // everything else scans brute-force through the registry closure.
    plan->cascade = request.measure == "cdtw" && stored.uniform_length > 0 &&
                    plan->query.size() == stored.uniform_length;
    plan->band = ResolveBand(request, stored.uniform_length > 0
                                          ? stored.uniform_length
                                          : plan->query.size());
    if (plan->cascade) {
      plan->query_envelope = ComputeEnvelope(plan->query, plan->band);
      plan->band_slot = stored.BandSlot(plan->band);
    } else {
      plan->measure = MakeMeasure(request.measure, request.params);
    }

    if (request.deadline_ms > 0.0) {
      plan->deadline.enabled = true;
      plan->deadline.budget_ms = request.deadline_ms;
    }
    // Scatter: one slice per shard, chunk boundaries laid per shard over
    // its LOCAL candidate order, packed shard-major into one chunk array.
    // A shard-filtered sub-scan (cluster worker) keeps only its own
    // shard's slice; chunk boundaries within that shard are unchanged, so
    // the worker's partial answer merges into exactly what the full plan
    // would have produced for that shard.
    plan->slices.reserve(stored.shard_count());
    size_t chunk_total = 0;
    for (const ShardedDataset& shard : stored.shards) {
      if (request.shard_filter >= 0 &&
          shard.shard_id != static_cast<size_t>(request.shard_filter)) {
        continue;
      }
      plan->slices.push_back({&shard, chunk_total});
      chunk_total += ChunkCount(0, shard.size(), kScanGrain);
    }
    plan->chunks.resize(chunk_total);
    return plan;
  }

  // Scans one shard's local candidates [begin, end) — one chunk — into
  // the plan's per-chunk accumulator. Safe to run concurrently with any
  // other chunk of any plan; `workspace` must be exclusive to the caller.
  void ScanRange(ScanPlan& plan, const ShardSlice& slice, size_t begin,
                 size_t end, DtwWorkspace& workspace) {
    ChunkWork work(plan);
    const ShardedDataset& shard = *slice.shard;
    ChunkHits& out = plan.chunks[slice.chunk_offset + begin / kScanGrain];
    const ServeRequest& request = *plan.request;
    const std::vector<double>& query = plan.query;
    const CostKind cost = request.params.cost;
    const std::vector<Envelope>* candidate_envelopes =
        plan.band_slot == StoredDataset::kNoBand
            ? nullptr
            : &shard.envelopes[plan.band_slot];
    // Rung-1 LB_Kim for the whole chunk in vector lanes, off the shard's
    // contiguous head/tail caches. The values are independent of the
    // running bound, so hoisting them changes no kill decision, and the
    // per-candidate call counting below (including its interaction with
    // deadline expiry) is untouched.
    WARP_DCHECK(end - begin <= kScanGrain);
    std::array<double, kScanGrain> kim_cache;
    const bool batched_kim = plan.cascade && query.size() >= 2 &&
                             end > begin && simd::SimdActive();
    if (batched_kim) {
      WithCost(cost, [&](auto c) {
        simd::LbKimBatch<decltype(c)>(
            query.front(), query.back(), shard.head.data() + begin,
            shard.tail.data() + begin, end - begin, kim_cache.data());
      });
    }
    for (size_t i = begin; i < end; ++i) {
      if (plan.deadline.Expired()) return;
      ++out.scanned;
      WARP_COUNT(obs::Counter::kCascadeCandidates);
      // The pruning threshold: anything with distance strictly above it
      // cannot enter the answer. Range queries use the fixed request
      // threshold; 1nn combines the shared bound with the chunk-local
      // best; knn uses the chunk-local k-th best. All three are valid
      // upper bounds no matter how candidates are partitioned into
      // chunks or shards, and the tests are STRICT, so re-sharding can
      // change which candidates get pruned but never the answer.
      const double bound =
          plan.is_range ? request.threshold
                        : std::min(plan.shared.Get(), out.KthBound(plan.k));
      double distance;
      if (plan.cascade) {
        const std::span<const double> candidate = shard.data[i].view();
        WARP_COUNT(obs::Counter::kLbKimCalls);
        if (query.size() == 1) {
          distance = PointCost(query[0], shard.head[i], cost);
        } else {
          const double kim =
              batched_kim
                  ? kim_cache[i - begin]
                  : PointCost(query[0], shard.head[i], cost) +
                        PointCost(query[query.size() - 1], shard.tail[i],
                                  cost);
          if (kim > bound) {
            WARP_COUNT(obs::Counter::kLbKimKills);
            continue;
          }
          if (candidate_envelopes != nullptr &&
              LbKeogh((*candidate_envelopes)[i], query, cost, bound) >
                  bound) {
            WARP_COUNT(obs::Counter::kLbKeoghKills);
            continue;
          }
          if (LbKeogh(plan.query_envelope, candidate, cost, bound) > bound) {
            WARP_COUNT(obs::Counter::kLbKeoghKills);
            continue;
          }
          distance = CdtwDistanceAbandoning(query, candidate, plan.band,
                                            bound, cost, &workspace);
          if (distance == kInf) {
            WARP_COUNT(obs::Counter::kCascadeEarlyAbandons);
            continue;
          }
          WARP_COUNT(obs::Counter::kCascadeFullDtw);
        }
      } else {
        distance = plan.measure(query, shard.data[i].view());
      }
      // Hits carry GLOBAL series indices, so the gather merge and the
      // (distance, index) total order are shard-layout-independent.
      const size_t global = shard.global_index[i];
      if (plan.is_range) {
        if (distance <= request.threshold) {
          out.hits.push_back({global, shard.data[i].label(), distance});
        }
      } else {
        out.AddTopK({global, shard.data[i].label(), distance}, plan.k);
        if (plan.k == 1) plan.shared.Lower(distance);
      }
    }
  }

  // Chunk-order gather merge on the calling thread: deterministic at any
  // thread count and identical between the candidate-parallel and
  // flattened batch paths. Shard-layout-independent too: top-k merging
  // selects the k smallest under the strict (distance, index) order (a
  // set property), and range hits are re-sorted into global index order
  // below (a no-op at 1 shard, where chunk concatenation is already
  // index-ordered).
  ServeResponse MergeScan(ScanPlan& plan) {
    const Stopwatch merge_watch;
    const ServeRequest& request = *plan.request;
    ServeResponse response;
    response.id = request.id;
    response.op = request.op;
    response.ok = true;
    // Candidate universe of THIS plan: the whole dataset normally, one
    // shard's share under a cluster sub-scan — so the router's summed
    // totals equal the single-process total.
    for (const ShardSlice& slice : plan.slices) {
      response.total += slice.shard->size();
    }
    for (const ChunkHits& chunk : plan.chunks) {
      response.scanned += chunk.scanned;
    }
    response.partial = response.scanned < response.total;
    if (response.partial) {
      WARP_COUNT(obs::Counter::kServeDeadlineExceeded);
    }
    size_t shard_scans = 0;
    for (const ShardSlice& slice : plan.slices) {
      if (slice.shard->size() > 0) ++shard_scans;
    }
    WARP_COUNT_ADD(obs::Counter::kServeShardScans, shard_scans);
    if (plan.is_range) {
      for (ChunkHits& chunk : plan.chunks) {
        response.neighbors.insert(response.neighbors.end(),
                                  chunk.hits.begin(), chunk.hits.end());
      }
      std::sort(response.neighbors.begin(), response.neighbors.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.index < b.index;
                });
    } else {
      ChunkHits merged;
      for (const ChunkHits& chunk : plan.chunks) {
        for (const Neighbor& n : chunk.hits) merged.AddTopK(n, plan.k);
      }
      response.neighbors = std::move(merged.hits);
    }
    response.trace.engine_us =
        static_cast<double>(
            plan.engine_nanos.load(std::memory_order_relaxed)) *
        1e-3;
    response.trace.cells = plan.dtw_cells.load(std::memory_order_relaxed);
    response.trace.cache_us = plan.cache_us;
    response.trace.merge_us = merge_watch.ElapsedMicros();
    return response;
  }

  // One schedulable chunk of one plan: a contiguous local candidate run
  // inside one shard slice. Both execution paths (single request, batch)
  // flatten their plans into a list of these and fan the list out.
  struct ScanUnit {
    ScanPlan* plan;
    size_t slice;  // Index into plan->slices.
    size_t begin;
    size_t end;  // Local candidate range within the shard.
  };

  static void AppendUnits(ScanPlan* plan, std::vector<ScanUnit>* units) {
    for (size_t s = 0; s < plan->slices.size(); ++s) {
      const size_t count = plan->slices[s].shard->size();
      for (size_t begin = 0; begin < count; begin += kScanGrain) {
        units->push_back(
            {plan, s, begin, std::min(begin + kScanGrain, count)});
      }
    }
  }

  void RunUnits(const std::vector<ScanUnit>& units, const ExecContext& ctx) {
    ParallelFor(ctx.pool, 0, units.size(), 1,
                [&](size_t begin, size_t end, size_t worker) {
                  for (size_t u = begin; u < end; ++u) {
                    const ScanUnit& unit = units[u];
                    ScanRange(*unit.plan, unit.plan->slices[unit.slice],
                              unit.begin, unit.end,
                              WorkspaceFor(ctx, worker));
                  }
                });
  }

  ServeResponse ExecuteScan(const ServeRequest& request,
                            const StoredDataset& stored,
                            const ExecContext& ctx) {
    const std::unique_ptr<ScanPlan> plan = PrepareScan(request, stored);
    std::vector<ScanUnit> units;
    AppendUnits(plan.get(), &units);
    RunUnits(units, ctx);
    return MergeScan(*plan);
  }

  // Final per-query accounting, common to every execution path: stamps
  // the trace-echo flag, records the stage/latency/work histograms, and
  // feeds computed queries to the slow-query log. Latency here is
  // engine-side (lookup + scan + merge); parse/queue/serialize stages are
  // recorded by their own layers.
  void FinishQuery(const ServeRequest& request, ServeResponse* response) {
    StageTrace& t = response->trace;
    t.requested = request.trace;
    const double latency_us = t.cache_us + t.engine_us + t.merge_us;
    WARP_HISTOGRAM_RECORD_US(LatencyHistogramForOp(request.op), latency_us);
    WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeStageCacheLookup,
                             t.cache_us);
    if (t.from_cache) return;
    WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeStageEngineScan,
                             t.engine_us);
    WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeStageMerge, t.merge_us);
    WARP_HISTOGRAM_RECORD(obs::Histogram::kServeCellsPerQuery, t.cells);
    if (slowlog != nullptr && response->ok) {
      SlowQueryRecord record;
      record.id = response->id;
      record.op = QueryOpName(request.op);
      record.dataset = request.dataset;
      record.measure = request.measure;
      record.engine_us = t.engine_us;
      record.total_us = latency_us;
      record.cells = t.cells;
      record.scanned = response->scanned;
      record.total = response->total;
      record.partial = response->partial;
      slowlog->Record(std::move(record));
    }
  }

  ServeResponse RunOne(const ServeRequest& request,
                       const std::shared_ptr<const StoredDataset>& snapshot,
                       const ExecContext& ctx) {
    const std::string key = CacheKey(request, snapshot->epoch);
    const Stopwatch lookup;
    ServeResponse response;
    if (cache != nullptr && cache->Lookup(key, &response)) {
      response.id = request.id;
      response.trace.from_cache = true;
      response.trace.cache_us = lookup.ElapsedMicros();
      FinishQuery(request, &response);
      return response;
    }
    const double cache_us = cache != nullptr ? lookup.ElapsedMicros() : 0.0;
    response = Execute(request, *snapshot, ctx);
    response.trace.cache_us = cache_us;
    if (cache != nullptr) cache->Insert(key, response);
    FinishQuery(request, &response);
    return response;
  }
};

QueryEngine::QueryEngine(const DatasetStore* store, ResultCache* cache,
                         size_t threads, SlowQueryLog* slowlog)
    : impl_(std::make_unique<Impl>(store, cache, threads, slowlog)) {
  WARP_CHECK(store != nullptr);
}

QueryEngine::~QueryEngine() = default;

size_t QueryEngine::threads() const { return impl_->Threads(); }

ServeResponse QueryEngine::Run(const ServeRequest& request) {
  WARP_COUNT(obs::Counter::kServeRequests);
  std::shared_ptr<const StoredDataset> snapshot;
  ServeResponse failure;
  if (!impl_->Resolve(request, &snapshot, &failure)) return failure;
  Impl::ExecContext ctx;
  ctx.pool = impl_->pool.get();
  return impl_->RunOne(request, snapshot, ctx);
}

void QueryEngine::RunBatch(const std::vector<ServeRequest>& requests,
                           std::vector<ServeResponse>* responses) {
  responses->assign(requests.size(), ServeResponse{});

  // Group request indexes by dataset, first-appearance order, so each
  // group resolves its snapshot once and scans it back to back (shared
  // index, warm cache lines across the group's queries).
  std::vector<std::pair<std::string, std::vector<size_t>>> groups;
  for (size_t i = 0; i < requests.size(); ++i) {
    WARP_COUNT(obs::Counter::kServeRequests);
    bool found = false;
    for (auto& [name, members] : groups) {
      if (name == requests[i].dataset) {
        members.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) groups.push_back({requests[i].dataset, {i}});
  }

  for (const auto& [name, members] : groups) {
    WARP_COUNT(obs::Counter::kServeBatches);
    WARP_COUNT_ADD(obs::Counter::kServeBatchedQueries, members.size());
    // Validate each member against the snapshot it resolved — a
    // concurrent re-registration mid-group must not let a request
    // validated against one epoch execute against another.
    std::vector<std::pair<size_t, std::shared_ptr<const StoredDataset>>>
        runnable;
    for (const size_t i : members) {
      std::shared_ptr<const StoredDataset> snap;
      ServeResponse failure;
      if (!impl_->Resolve(requests[i], &snap, &failure)) {
        (*responses)[i] = std::move(failure);
        continue;
      }
      runnable.emplace_back(i, std::move(snap));
    }
    if (runnable.empty()) continue;

    if (impl_->pool == nullptr) {
      Impl::ExecContext ctx;  // Serial engine: scan inline, slot 0.
      for (const auto& [r, snap] : runnable) {
        (*responses)[r] = impl_->RunOne(requests[r], snap, ctx);
      }
      continue;
    }

    // Pooled path: answer cache hits and single-series ops inline, build
    // a ScanPlan per uncached scan, then flatten every plan's chunks into
    // ONE work list — the pool stays saturated regardless of how the
    // batch divides into requests (a batch of 2 big scans and 30 tiny
    // ones fans out as well as 32 equal ones). Chunk boundaries, merges,
    // and pruning rules are exactly those of the single-request path, so
    // every response is bitwise-identical to Run() on its own.
    std::vector<std::unique_ptr<Impl::ScanPlan>> plans;
    for (const auto& [r, snap] : runnable) {
      const ServeRequest& request = requests[r];
      const std::string key = CacheKey(request, snap->epoch);
      const Stopwatch lookup;
      ServeResponse hit;
      if (impl_->cache != nullptr && impl_->cache->Lookup(key, &hit)) {
        hit.id = request.id;
        hit.trace.from_cache = true;
        hit.trace.cache_us = lookup.ElapsedMicros();
        impl_->FinishQuery(request, &hit);
        (*responses)[r] = std::move(hit);
        continue;
      }
      const double cache_us =
          impl_->cache != nullptr ? lookup.ElapsedMicros() : 0.0;
      if (Impl::IsScanOp(request.op)) {
        std::unique_ptr<Impl::ScanPlan> plan =
            impl_->PrepareScan(request, *snap);
        plan->slot = r;
        plan->cache_key = key;
        plan->cache_us = cache_us;
        plans.push_back(std::move(plan));
      } else {
        Impl::ExecContext ctx;
        ctx.pool = impl_->pool.get();
        ServeResponse response = impl_->Execute(request, *snap, ctx);
        response.trace.cache_us = cache_us;
        if (impl_->cache != nullptr) {
          impl_->cache->Insert(key, response);
        }
        impl_->FinishQuery(request, &response);
        (*responses)[r] = std::move(response);
      }
    }
    if (plans.empty()) continue;

    std::vector<Impl::ScanUnit> units;
    for (const std::unique_ptr<Impl::ScanPlan>& plan : plans) {
      Impl::AppendUnits(plan.get(), &units);
    }
    Impl::ExecContext scan_ctx;
    scan_ctx.pool = impl_->pool.get();
    impl_->RunUnits(units, scan_ctx);
    for (const std::unique_ptr<Impl::ScanPlan>& plan : plans) {
      ServeResponse response = impl_->MergeScan(*plan);
      if (impl_->cache != nullptr) {
        impl_->cache->Insert(plan->cache_key, response);
      }
      impl_->FinishQuery(*plan->request, &response);
      (*responses)[plan->slot] = std::move(response);
    }
  }
}

}  // namespace serve
}  // namespace warp
