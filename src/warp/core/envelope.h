// Warping envelopes for LB_Keogh.
//
// For a series q and band w, the envelope is
//   upper[i] = max(q[i-w .. i+w]),  lower[i] = min(q[i-w .. i+w])
// (indices clamped to the series). Computed in O(n) regardless of w with
// Lemire's monotonic-deque streaming min/max (Lemire, "Faster Retrieval
// with a Two-Pass Dynamic-Time-Warping Lower Bound", 2009).

#ifndef WARP_CORE_ENVELOPE_H_
#define WARP_CORE_ENVELOPE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace warp {

struct Envelope {
  std::vector<double> upper;
  std::vector<double> lower;
};

// O(n) streaming computation; `band` is the Sakoe–Chiba half-width in
// cells. band >= n yields constant envelopes (global max/min).
Envelope ComputeEnvelope(std::span<const double> values, size_t band);

// Reference O(n*w) implementation, kept for differential testing.
Envelope ComputeEnvelopeNaive(std::span<const double> values, size_t band);

}  // namespace warp

#endif  // WARP_CORE_ENVELOPE_H_
