#include "warp/check/exactness_oracle.h"

#include <cmath>
#include <cstdio>

#include "warp/check/path_oracle.h"
#include "warp/common/assert.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/mining/nn_classifier.h"

namespace warp {
namespace check {

namespace {

bool NearlyEqual(double a, double b, double tolerance) {
  return std::fabs(a - b) <=
         tolerance * (1.0 + std::fabs(a) + std::fabs(b));
}

bool Explain(std::string* error, const char* format, double a, double b) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), format, a, b);
  *error = buffer;
  return false;
}

}  // namespace

bool CheckAbandoningExact(std::span<const double> x,
                          std::span<const double> y, size_t band,
                          double threshold, CostKind cost, double tolerance,
                          std::string* error) {
  WARP_CHECK(error != nullptr);
  const double exact = CdtwDistance(x, y, band, cost);
  const double abandoned = CdtwDistanceAbandoning(x, y, band, threshold, cost);
  if (std::isinf(abandoned)) {
    if (exact <= threshold) {
      return Explain(error,
                     "early abandon fired although the exact distance "
                     "%.17g is within the threshold %.17g",
                     exact, threshold);
    }
    return true;
  }
  if (!NearlyEqual(abandoned, exact, tolerance)) {
    return Explain(error,
                   "early-abandoning distance %.17g differs from the exact "
                   "distance %.17g",
                   abandoned, exact);
  }
  return true;
}

bool CheckPrunedExact(std::span<const double> x, std::span<const double> y,
                      size_t band, CostKind cost, double upper_bound,
                      double tolerance, std::string* error) {
  WARP_CHECK(error != nullptr);
  const double exact = CdtwDistance(x, y, band, cost);
  const double pruned = PrunedCdtwDistance(x, y, band, cost, upper_bound);
  if (!NearlyEqual(pruned, exact, tolerance)) {
    return Explain(error,
                   "PrunedDTW distance %.17g differs from the exact banded "
                   "distance %.17g",
                   pruned, exact);
  }
  return true;
}

bool CheckFastDtwAdmissible(std::span<const double> x,
                            std::span<const double> y, size_t radius,
                            CostKind cost, double tolerance,
                            std::string* error) {
  WARP_CHECK(error != nullptr);
  const DtwResult approx = FastDtw(x, y, radius, cost);
  const double exact = DtwDistance(x, y, cost);
  const double slack =
      tolerance * (1.0 + std::fabs(exact) + std::fabs(approx.distance));
  if (approx.distance < exact - slack) {
    return Explain(error,
                   "FastDTW distance %.17g undershoots the exact DTW "
                   "distance %.17g — an inadmissible approximation",
                   approx.distance, exact);
  }
  if (!CheckPath(approx.path, x.size(), y.size(), error)) return false;
  return CheckPathCost(approx.path, x, y, cost, approx.distance, tolerance,
                       error);
}

bool CheckSelfDistanceZero(std::span<const double> x, size_t band,
                           CostKind cost, double tolerance,
                           std::string* error) {
  WARP_CHECK(error != nullptr);
  const double banded = CdtwDistance(x, x, band, cost);
  const double full = DtwDistance(x, x, cost);
  if (!NearlyEqual(banded, 0.0, tolerance) ||
      !NearlyEqual(full, 0.0, tolerance)) {
    return Explain(error,
                   "self-distance is not zero: cDTW_w(a, a) = %.17g, "
                   "DTW(a, a) = %.17g",
                   banded, full);
  }
  return true;
}

bool CheckSymmetry(std::span<const double> x, std::span<const double> y,
                   size_t band, CostKind cost, double tolerance,
                   std::string* error) {
  WARP_CHECK(error != nullptr);
  const double forward = CdtwDistance(x, y, band, cost);
  const double backward = CdtwDistance(y, x, band, cost);
  if (!NearlyEqual(forward, backward, tolerance)) {
    return Explain(error,
                   "cDTW_w(x, y) = %.17g differs from cDTW_w(y, x) = %.17g",
                   forward, backward);
  }
  return true;
}

bool CheckCascadeExact(const Dataset& train, const Dataset& test,
                       size_t band, CostKind cost, size_t threads,
                       double tolerance, std::string* error) {
  WARP_CHECK(error != nullptr);
  WARP_CHECK(!train.empty() && !test.empty());
  const AcceleratedNnClassifier accelerated(train, band, cost);
  const SeriesMeasure measure = [band, cost](std::span<const double> a,
                                             std::span<const double> b) {
    return CdtwDistance(a, b, band, cost);
  };
  size_t brute_correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const Prediction fast = accelerated.Classify(test[i].view());
    const Prediction brute = Classify1Nn(train, test[i].view(), measure);
    if (brute.label == test[i].label()) ++brute_correct;
    if (!NearlyEqual(fast.distance, brute.distance, tolerance)) {
      char buffer[192];
      std::snprintf(buffer, sizeof(buffer),
                    "query %zu: cascade nearest distance %.17g differs from "
                    "brute force %.17g",
                    i, fast.distance, brute.distance);
      *error = buffer;
      return false;
    }
    // Equal-distance ties may resolve to different exemplars, but then
    // both exemplars are genuine nearest neighbors; labels must still
    // agree when the tie is unique.
    if (fast.nn_index == brute.nn_index && fast.label != brute.label) {
      char buffer[160];
      std::snprintf(buffer, sizeof(buffer),
                    "query %zu: cascade label %d differs from brute force "
                    "%d at the same neighbor",
                    i, fast.label, brute.label);
      *error = buffer;
      return false;
    }
  }
  const ClassificationStats stats = accelerated.Evaluate(test, threads);
  if (stats.correct != brute_correct || stats.total != test.size()) {
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "Evaluate at %zu thread(s) counted %zu/%zu correct but "
                  "brute force counted %zu/%zu",
                  threads, stats.correct, stats.total, brute_correct,
                  test.size());
    *error = buffer;
    return false;
  }
  return true;
}

}  // namespace check
}  // namespace warp
