// Unit tests for Derivative DTW.

#include "warp/core/ddtw.h"

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(DerivativeTransformTest, LinearRampHasConstantDerivative) {
  std::vector<double> ramp;
  for (int i = 0; i < 10; ++i) ramp.push_back(2.0 * i);
  const std::vector<double> d = DerivativeTransform(ramp);
  ASSERT_EQ(d.size(), ramp.size());
  for (double v : d) EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(DerivativeTransformTest, ConstantSeriesHasZeroDerivative) {
  const std::vector<double> flat(8, 3.5);
  for (double v : DerivativeTransform(flat)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DerivativeTransformTest, KnownInteriorFormula) {
  const std::vector<double> x = {0.0, 1.0, 4.0, 5.0};
  const std::vector<double> d = DerivativeTransform(x);
  // d[1] = ((1-0) + (4-0)/2)/2 = 1.5; d[2] = ((4-1) + (5-1)/2)/2 = 2.5.
  EXPECT_DOUBLE_EQ(d[1], 1.5);
  EXPECT_DOUBLE_EQ(d[2], 2.5);
  EXPECT_DOUBLE_EQ(d[0], d[1]);
  EXPECT_DOUBLE_EQ(d[3], d[2]);
}

TEST(DdtwTest, LevelShiftIsInvisible) {
  // DDTW is invariant to adding a constant offset; plain DTW is not.
  Rng rng(141);
  const std::vector<double> x = gen::RandomWalk(60, rng);
  std::vector<double> shifted = x;
  for (double& v : shifted) v += 100.0;
  EXPECT_NEAR(DdtwDistance(x, shifted, 5), 0.0, 1e-9);
  EXPECT_GT(CdtwDistance(x, shifted, 5), 1000.0);
}

TEST(DdtwTest, AgreesWithDtwOnTransformedSeries) {
  Rng rng(142);
  const std::vector<double> x = gen::RandomWalk(50, rng);
  const std::vector<double> y = gen::RandomWalk(50, rng);
  EXPECT_DOUBLE_EQ(
      DdtwDistance(x, y, 7),
      CdtwDistance(DerivativeTransform(x), DerivativeTransform(y), 7));
}

TEST(DdtwTest, PathIsValidOnOriginalIndices) {
  Rng rng(143);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  const std::vector<double> y = gen::RandomWalk(45, rng);
  const DtwResult result = Ddtw(x, y, 10);
  EXPECT_TRUE(result.path.IsValid(x.size(), y.size()));
}

}  // namespace
}  // namespace warp
