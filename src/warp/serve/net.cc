#include "warp/serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace warp {
namespace serve {

namespace {

// Upper bound on one protocol line; a 1M-point query of 24-char doubles
// is ~25 MiB, so 64 MiB leaves headroom without letting a broken client
// buffer unboundedly.
constexpr size_t kMaxLineBytes = 64u << 20;

constexpr size_t kReadChunk = 64 * 1024;

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpConn::~TcpConn() { Close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

bool TcpConn::ReadLine(std::string* line) {
  line->clear();
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    if (fd_ < 0 || buffer_.size() > kMaxLineBytes) return false;

    char chunk[kReadChunk];
    ssize_t got;
    do {
      got = recv(fd_, chunk, sizeof(chunk), 0);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return false;  // EOF or error.
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

bool TcpConn::HasBufferedLine() const {
  return buffer_.find('\n') != std::string::npos;
}

bool TcpConn::WaitReadable(int timeout_ms) {
  if (HasBufferedLine()) return true;
  if (fd_ < 0) return false;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int ready;
  do {
    ready = poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);
  return ready > 0;
}

bool TcpConn::WriteAll(std::string_view data) {
  if (fd_ < 0) return false;
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t sent;
    do {
      sent = send(fd_, p, left, MSG_NOSIGNAL);
    } while (sent < 0 && errno == EINTR);
    if (sent <= 0) return false;
    p += sent;
    left -= static_cast<size_t>(sent);
  }
  return true;
}

void TcpConn::ShutdownBoth() {
  if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

TcpListener::~TcpListener() { Close(); }

bool TcpListener::Listen(uint16_t port, std::string* error) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind 127.0.0.1:") + std::to_string(port) + ": " +
             std::strerror(errno);
    Close();
    return false;
  }
  if (listen(fd_, 64) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    Close();
    return false;
  }

  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    Close();
    return false;
  }
  port_ = ntohs(addr.sin_port);
  return true;
}

TcpConn TcpListener::AcceptWithTimeout(int timeout_ms, bool* timed_out) {
  *timed_out = false;
  if (fd_ < 0) return TcpConn();

  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int ready;
  do {
    ready = poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready == 0) {
    *timed_out = true;
    return TcpConn();
  }
  if (ready < 0) return TcpConn();

  int client;
  do {
    client = accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) return TcpConn();
  SetNoDelay(client);
  return TcpConn(client);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

TcpConn ConnectLoopback(int port, std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return TcpConn();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    *error = std::string("connect 127.0.0.1:") + std::to_string(port) + ": " +
             std::strerror(errno);
    close(fd);
    return TcpConn();
  }
  SetNoDelay(fd);
  return TcpConn(fd);
}

TcpConn ConnectLoopbackTimeout(int port, int timeout_ms,
                               std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return TcpConn();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    *error = std::string("connect 127.0.0.1:") + std::to_string(port) + ": " +
             std::strerror(errno);
    close(fd);
    return TcpConn();
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int ready;
    do {
      ready = poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (ready <= 0 ||
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      *error = std::string("connect 127.0.0.1:") + std::to_string(port) +
               ": " + (ready <= 0 ? "timed out" : std::strerror(soerr));
      close(fd);
      return TcpConn();
    }
  }
  // Back to blocking mode: callers use the same ReadLine/WriteAll
  // discipline as ConnectLoopback connections.
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  SetNoDelay(fd);
  return TcpConn(fd);
}

}  // namespace serve
}  // namespace warp
