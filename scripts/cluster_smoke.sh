#!/usr/bin/env bash
# Multi-process cluster smoke test (CI job `cluster-smoke`).
#
# Builds a 3-shard cluster (router + 3 warp_serve worker processes) from
# a snapshot directory and asserts the cross-process determinism and
# failure contracts end to end (docs/SERVING.md, "Multi-process cluster"):
#   * a single-process `--shards=3` server restored from the same
#     snapshots produces the golden answers for a five-op query mix
#     (1nn / knn / range / dist / subsequence, plus a cache-hit repeat);
#   * the cluster answers the same mix byte-identically;
#   * SIGKILLing a worker (pid scraped from the launcher's
#     "worker shard=K pid=P" lines) yields flagged degradation — scans
#     answer ok with partial:true and the dead shard in shards_missing —
#     with no hangs or crashes;
#   * after the supervisor restarts the worker, the full mix is again
#     byte-identical to the golden, and the cluster's merged stats report
#     the restart;
#   * `shutdown` stops the whole cluster with exit code 0.
#
# Usage: scripts/cluster_smoke.sh [BUILD_DIR]   (default: build)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
SERVE="$BUILD_DIR/tools/warp_serve"
CLUSTER="$BUILD_DIR/tools/warp_cluster"
CLI="$BUILD_DIR/tools/warp_cli"
WORK="$(mktemp -d)"
SERVER_PID=""
CLUSTER_PID=""

fail() {
  echo "CLUSTER SMOKE FAIL: $*" >&2
  [ -f "$WORK/server.log" ] && sed 's/^/  server: /' "$WORK/server.log" >&2
  [ -f "$WORK/cluster.log" ] && sed 's/^/  cluster: /' "$WORK/cluster.log" >&2
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2> /dev/null
  [ -n "$CLUSTER_PID" ] && kill "$CLUSTER_PID" 2> /dev/null
  rm -rf "$WORK"
  exit 1
}

[ -x "$SERVE" ] || fail "$SERVE not built"
[ -x "$CLUSTER" ] || fail "$CLUSTER not built"
[ -x "$CLI" ] || fail "$CLI not built"

wait_ready_port() {
  # wait_ready_port LOGFILE PIDVAR_VALUE -> prints the scraped port
  local log="$1" pid="$2" port=""
  for _ in $(seq 1 150); do
    port="$(sed -n 's/^ready port=\([0-9]*\)$/\1/p' "$log" 2> /dev/null)"
    [ -n "$port" ] && break
    kill -0 "$pid" 2> /dev/null || return 1
    sleep 0.1
  done
  [ -n "$port" ] || return 1
  echo "$port"
}

# --- Produce the snapshot every process loads -------------------------------
mkdir -p "$WORK/snapdir"
"$SERVE" --gen=smoke=40,64 --threads=2 > "$WORK/seed.log" &
SERVER_PID=$!
SEED_PORT="$(wait_ready_port "$WORK/seed.log" "$SERVER_PID")" \
    || fail "seed server never came up"
echo '{"id": 1, "op": "save_snapshot", "dataset": "smoke", "path": "'"$WORK"'/snapdir/smoke.wsnap"}' \
    | "$CLI" query --port="$SEED_PORT" > "$WORK/save.txt" \
    || fail "save_snapshot failed"
grep -q '"ok":true' "$WORK/save.txt" \
    || fail "save_snapshot wrong: $(cat "$WORK/save.txt")"
echo '{"id": 0, "op": "shutdown"}' | "$CLI" query --port="$SEED_PORT" > /dev/null
wait "$SERVER_PID" || fail "seed server exited nonzero"
SERVER_PID=""

# --- The query mix and its single-process golden ----------------------------
QUERY='[0.1, 0.7, 1.3, 0.9, 0.2, -0.4, -1.1, -0.6, 0.3, 1.0]'
SHORTQ='[0.3, 0.9, 1.1, 0.4, -0.2, -0.8]'
{
  echo '{"id": 1, "op": "1nn", "dataset": "smoke", "query": '"$QUERY"'}'
  echo '{"id": 2, "op": "knn", "dataset": "smoke", "k": 4, "query": '"$QUERY"'}'
  echo '{"id": 3, "op": "range", "dataset": "smoke", "threshold": 9.5, "query": '"$QUERY"'}'
  echo '{"id": 4, "op": "dist", "dataset": "smoke", "index": 7, "query": '"$QUERY"'}'
  echo '{"id": 5, "op": "subsequence", "dataset": "smoke", "index": 3, "query": '"$SHORTQ"'}'
  echo '{"id": 1, "op": "1nn", "dataset": "smoke", "query": '"$QUERY"'}'
} > "$WORK/requests.txt"

"$SERVE" --snapshot-dir="$WORK/snapdir" --shards=3 --threads=2 \
    > "$WORK/server.log" &
SERVER_PID=$!
GOLDEN_PORT="$(wait_ready_port "$WORK/server.log" "$SERVER_PID")" \
    || fail "single-process --shards=3 server never came up"
"$CLI" query --port="$GOLDEN_PORT" < "$WORK/requests.txt" > "$WORK/golden.txt" \
    || fail "golden query run failed"
grep -q '"ok":false' "$WORK/golden.txt" && fail "golden run has failures:
$(cat "$WORK/golden.txt")"
echo '{"id": 0, "op": "shutdown"}' | "$CLI" query --port="$GOLDEN_PORT" > /dev/null
wait "$SERVER_PID" || fail "golden server exited nonzero"
SERVER_PID=""
echo "cluster-smoke: golden answers captured"

# --- Start the 3-shard cluster from the same snapshots ----------------------
# A long first-restart backoff keeps the degraded window open long enough
# to observe after the SIGKILL below.
"$CLUSTER" --shards=3 --snapshot-dir="$WORK/snapdir" --threads=2 \
    --restart-backoff-ms=4000 > "$WORK/cluster.log" &
CLUSTER_PID=$!
PORT="$(wait_ready_port "$WORK/cluster.log" "$CLUSTER_PID")" \
    || fail "cluster never came up"
WORKER1_PID="$(sed -n 's/^worker shard=1 pid=\([0-9]*\).*/\1/p' "$WORK/cluster.log")"
[ -n "$WORKER1_PID" ] || fail "no worker shard=1 pid line in cluster log"
echo "cluster-smoke: cluster up on port $PORT (worker 1 pid $WORKER1_PID)"

# Healthy cluster: byte-identical to the single process.
"$CLI" query --port="$PORT" < "$WORK/requests.txt" > "$WORK/cluster1.txt" \
    || fail "cluster query run failed"
diff "$WORK/golden.txt" "$WORK/cluster1.txt" > /dev/null \
    || fail "cluster answers diverged from single process:
$(diff "$WORK/golden.txt" "$WORK/cluster1.txt" | head -8)"
echo "cluster-smoke: healthy cluster byte-identical to single process"

# --- Kill worker 1: flagged partial degradation, no hangs -------------------
kill -KILL "$WORKER1_PID" 2> /dev/null || fail "could not SIGKILL worker 1"
# Give the supervisor a moment to reap the death before probing.
sleep 0.5
echo '{"id": 1, "op": "1nn", "dataset": "smoke", "query": '"$QUERY"'}' \
    | "$CLI" query --port="$PORT" > "$WORK/degraded.txt" \
    || fail "query against degraded cluster failed"
grep -q '"ok":true' "$WORK/degraded.txt" \
    || fail "degraded scan not ok: $(cat "$WORK/degraded.txt")"
grep -q '"partial":true' "$WORK/degraded.txt" \
    || fail "degraded scan not flagged partial: $(cat "$WORK/degraded.txt")"
grep -q '"shards_missing":\[1\]' "$WORK/degraded.txt" \
    || fail "missing shard not named: $(cat "$WORK/degraded.txt")"
echo "cluster-smoke: degraded window flagged (partial:true, shards_missing:[1])"

# --- Wait out the restart, then demand bitwise recovery ---------------------
RECOVERED=""
for _ in $(seq 1 120); do
  echo '{"id": 1, "op": "1nn", "dataset": "smoke", "query": '"$QUERY"'}' \
      | "$CLI" query --port="$PORT" > "$WORK/probe.txt" 2> /dev/null
  if grep -q '"ok":true' "$WORK/probe.txt" \
      && ! grep -q '"partial":true' "$WORK/probe.txt"; then
    RECOVERED=1
    break
  fi
  sleep 0.25
done
[ -n "$RECOVERED" ] || fail "worker 1 never came back"

"$CLI" query --port="$PORT" < "$WORK/requests.txt" > "$WORK/cluster2.txt" \
    || fail "post-restart query run failed"
diff "$WORK/golden.txt" "$WORK/cluster2.txt" > /dev/null \
    || fail "post-restart answers diverged from single process:
$(diff "$WORK/golden.txt" "$WORK/cluster2.txt" | head -8)"
echo "cluster-smoke: post-restart cluster byte-identical again"

# Merged stats must carry the cluster counters (the restart is visible).
echo '{"id": 9, "op": "stats"}' | "$CLI" query --port="$PORT" \
    > "$WORK/stats.txt" || fail "cluster stats failed"
grep -q '"cluster_scatters":' "$WORK/stats.txt" \
    || fail "stats missing cluster_scatters: $(cat "$WORK/stats.txt")"
grep -q '"cluster_worker_restarts":' "$WORK/stats.txt" \
    || fail "stats missing cluster_worker_restarts"
grep -q '"cluster_partial_replies":' "$WORK/stats.txt" \
    || fail "stats missing cluster_partial_replies"

# --- Clean shutdown of the whole cluster ------------------------------------
echo '{"id": 99, "op": "shutdown"}' | "$CLI" query --port="$PORT" \
    > "$WORK/shutdown.txt" || fail "cluster shutdown request failed"
grep -q '"ok":true' "$WORK/shutdown.txt" || fail "cluster shutdown not acked"
wait "$CLUSTER_PID"
CODE=$?
[ "$CODE" -eq 0 ] || fail "cluster exited $CODE after shutdown"
CLUSTER_PID=""

rm -rf "$WORK"
echo "cluster-smoke: all cluster checks passed"
