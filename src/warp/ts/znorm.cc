#include "warp/ts/znorm.h"

#include "warp/common/assert.h"

namespace warp {

MeanStd ComputeMeanStd(std::span<const double> values) {
  WARP_CHECK(!values.empty());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(values.size());
  MeanStd result;
  result.mean = sum / n;
  const double variance = sum_sq / n - result.mean * result.mean;
  result.stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return result;
}

void ZNormalizeInPlace(std::span<double> values, double min_stddev) {
  if (values.empty()) return;
  const MeanStd ms = ComputeMeanStd(values);
  if (ms.stddev < min_stddev) {
    for (double& v : values) v = 0.0;
    return;
  }
  const double inv = 1.0 / ms.stddev;
  for (double& v : values) v = (v - ms.mean) * inv;
}

std::vector<double> ZNormalized(std::span<const double> values,
                                double min_stddev) {
  std::vector<double> out(values.begin(), values.end());
  ZNormalizeInPlace(out, min_stddev);
  return out;
}

}  // namespace warp
