// Unit tests for the streaming query monitor.

#include "warp/mining/stream_monitor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"

namespace warp {
namespace {

std::vector<double> SinePattern(size_t m) {
  std::vector<double> pattern(m);
  for (size_t t = 0; t < m; ++t) {
    pattern[t] = std::sin(2.0 * M_PI * static_cast<double>(t) /
                          static_cast<double>(m));
  }
  return pattern;
}

TEST(StreamMonitorTest, NoEventsBeforeWindowFills) {
  StreamMonitor monitor(SinePattern(32), 3, 1.0);
  for (int t = 0; t < 31; ++t) {
    EXPECT_FALSE(monitor.Push(0.0).has_value());
  }
  EXPECT_EQ(monitor.stats().windows_checked, 0u);
}

TEST(StreamMonitorTest, FiresOnPlantedPattern) {
  const size_t m = 50;
  const std::vector<double> pattern = SinePattern(m);
  StreamMonitor monitor(pattern, 3, 0.5);

  Rng rng(191);
  bool fired_in_window = false;
  uint64_t fired_at = 0;
  // 300 samples of noise, then the pattern (scaled and offset — the
  // monitor z-normalizes), then more noise.
  for (int t = 0; t < 300; ++t) {
    const auto event = monitor.Push(rng.Gaussian(0.0, 0.05) + 10.0);
    EXPECT_FALSE(event.has_value()) << "spurious event at " << t;
  }
  for (size_t k = 0; k < m; ++k) {
    const auto event = monitor.Push(3.0 * pattern[k] + 42.0);
    if (event.has_value()) {
      fired_in_window = true;
      fired_at = event->end_time;
      EXPECT_LE(event->distance, 0.5);
    }
  }
  EXPECT_TRUE(fired_in_window);
  EXPECT_EQ(fired_at, 300 + m - 1);
}

TEST(StreamMonitorTest, WarpedOccurrenceStillFires) {
  const size_t m = 64;
  const std::vector<double> pattern = SinePattern(m);
  Rng rng(192);
  const std::vector<double> warped =
      gen::ApplyRandomWarp(pattern, 0.05, rng);

  StreamMonitor monitor(pattern, static_cast<size_t>(m * 0.08), 2.0);
  for (int t = 0; t < 100; ++t) monitor.Push(rng.Gaussian(5.0, 0.02));
  bool fired = false;
  for (double v : warped) {
    if (monitor.Push(v).has_value()) fired = true;
  }
  EXPECT_TRUE(fired);
}

TEST(StreamMonitorTest, CascadePrunesAlmostEverything) {
  const size_t m = 40;
  StreamMonitor monitor(SinePattern(m), 2, 0.1);
  Rng rng(193);
  for (int t = 0; t < 5000; ++t) monitor.Push(rng.Gaussian());
  const auto& stats = monitor.stats();
  EXPECT_EQ(stats.samples, 5000u);
  EXPECT_EQ(stats.windows_checked, 5000u - m + 1);
  const uint64_t pruned = stats.pruned_by_kim + stats.pruned_by_keogh +
                          stats.abandoned_dtw;
  EXPECT_EQ(pruned + stats.full_dtw, stats.windows_checked);
  // On pure noise with a tight threshold, full DTWs should be rare.
  EXPECT_LT(stats.full_dtw, stats.windows_checked / 10);
}

TEST(StreamMonitorTest, EventDistanceMatchesOfflineCdtw) {
  const size_t m = 32;
  const std::vector<double> pattern = SinePattern(m);
  StreamMonitor monitor(pattern, 2, 5.0);
  // Feed exactly the pattern: the very first full window is a match.
  std::optional<StreamMonitor::Event> last;
  for (double v : pattern) {
    const auto event = monitor.Push(v);
    if (event.has_value()) last = event;
  }
  ASSERT_TRUE(last.has_value());
  const std::vector<double> q = ZNormalized(pattern);
  EXPECT_NEAR(last->distance, CdtwDistance(q, q, 2), 1e-9);
  EXPECT_NEAR(last->distance, 0.0, 1e-9);
}

}  // namespace
}  // namespace warp
