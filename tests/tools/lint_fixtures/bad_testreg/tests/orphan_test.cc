namespace {

int NeverRuns() { return 0; }

}  // namespace
