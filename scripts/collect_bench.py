#!/usr/bin/env python3
"""Run a small bench suite, validate the JSON reports, merge them.

This is the driver behind CI's `bench-smoke` job: it runs a handful of
bench binaries at deliberately tiny sizes (seconds total, not minutes),
checks that every `--json=<path>` report conforms to its schema, and
merges everything into a single trajectory file that CI uploads as an
artifact.  Two schemas are in play (see docs/OBSERVABILITY.md):

  * `warp-bench-v1`  — emitted by every Flags-based bench binary.
  * google-benchmark — emitted by bench_kernels, whose `--json=<path>`
    is translated to `--benchmark_out=<path> --benchmark_out_format=json`.

Usage:
  scripts/collect_bench.py [--build-dir=build] [--out=bench_trajectory.json]

Exit status is nonzero if any binary fails to run, any report fails
validation, or any expected report file is missing.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Each entry: (binary name, extra flags).  Keep sizes tiny — this is a
# smoke test of the reporting pipeline, not a measurement run.
SUITE = [
    ("bench_table1_cases", ["--reps=1"]),
    ("bench_accuracy_radius", ["--pairs=2", "--length=64"]),
    ("bench_footnote_trillion", ["--reps=20", "--haystack=20000"]),
    ("bench_serve_throughput", ["--series=20", "--length=32", "--queries=64",
                                "--clients=2", "--threads=2", "--repeats=1"]),
    # Names carry a trailing lanes arg (BM_Envelope/<n>/<lanes>), so
    # match the prefix instead of anchoring the end.
    ("bench_kernels", ["--benchmark_filter=BM_Envelope/128/"]),
]

TIMING_KEYS = {
    "repetitions", "mean_s", "stddev_s", "min_s", "max_s",
    "median_s", "p95_s", "p99_s", "total_s",
}

HISTOGRAM_KEYS = {"count", "sum", "mean", "p50", "p95", "p99", "buckets"}


def validate_histogram(name, histogram, source):
    """Checks one case-level histogram object (docs/OBSERVABILITY.md)."""
    missing = HISTOGRAM_KEYS - set(histogram)
    if missing:
        fail(f"{source}: histogram '{name}' missing {missing}")
    for key in ("count", "sum", "p50", "p95", "p99"):
        value = histogram[key]
        if not isinstance(value, int) or value < 0:
            fail(f"{source}: histogram '{name}' {key} is not a non-negative "
                 f"integer: {value!r}")
    buckets = histogram["buckets"]
    if not isinstance(buckets, list):
        fail(f"{source}: histogram '{name}' buckets must be an array")
    total = 0
    for bucket in buckets:
        if set(bucket) != {"le", "n"}:
            fail(f"{source}: histogram '{name}' bucket keys wrong: {bucket}")
        total += bucket["n"]
    if total != histogram["count"]:
        fail(f"{source}: histogram '{name}' bucket counts sum to {total}, "
             f"want count={histogram['count']}")


def fail(message):
    print(f"collect_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_warp_bench_v1(report, source):
    """Checks the warp-bench-v1 document structure (docs/OBSERVABILITY.md)."""
    for key in ("schema", "experiment", "description", "config", "host",
                "cases"):
        if key not in report:
            fail(f"{source}: missing top-level key '{key}'")
    if report["schema"] != "warp-bench-v1":
        fail(f"{source}: schema is '{report['schema']}', want 'warp-bench-v1'")
    host = report["host"]
    for key in ("profiling", "build"):
        if key not in host:
            fail(f"{source}: host object missing '{key}'")
    if not isinstance(report["cases"], list) or not report["cases"]:
        fail(f"{source}: 'cases' must be a non-empty array")
    for case in report["cases"]:
        for key in ("name", "timing", "counters"):
            if key not in case:
                fail(f"{source}: case missing '{key}': {case}")
        missing = TIMING_KEYS - set(case["timing"])
        if missing:
            fail(f"{source}: case '{case['name']}' timing missing {missing}")
        for counter, value in case["counters"].items():
            if not isinstance(value, int) or value < 0:
                fail(f"{source}: counter '{counter}' is not a non-negative "
                     f"integer: {value!r}")
        if "histograms" not in case:
            fail(f"{source}: case '{case['name']}' missing 'histograms'")
        for name, histogram in case["histograms"].items():
            validate_histogram(name, histogram, source)
    if "spans" in report and not isinstance(report["spans"], list):
        fail(f"{source}: 'spans' must be an array")
    # The serving bench is the one case source whose histograms must be
    # populated (per-op latency + stage + work distributions) on a
    # profiling build — an empty set there means the serve path stopped
    # recording.
    if source == "bench_serve_throughput" and report["host"]["profiling"]:
        populated = any(case["histograms"] for case in report["cases"])
        if not populated:
            fail(f"{source}: profiling build recorded no serve histograms")


def validate_google_benchmark(report, source):
    """Checks the google-benchmark JSON structure (bench_kernels)."""
    for key in ("context", "benchmarks"):
        if key not in report:
            fail(f"{source}: missing top-level key '{key}'")
    if not isinstance(report["benchmarks"], list) or not report["benchmarks"]:
        fail(f"{source}: 'benchmarks' must be a non-empty array")
    for entry in report["benchmarks"]:
        if "name" not in entry:
            fail(f"{source}: benchmark entry missing 'name': {entry}")


def run_one(build_dir, binary, extra_flags, json_dir):
    path = os.path.join(build_dir, "bench", binary)
    if not os.path.exists(path):
        fail(f"bench binary not found: {path} (build with "
             f"`cmake -B {build_dir} && cmake --build {build_dir}`)")
    json_path = os.path.join(json_dir, binary + ".json")
    command = [path, *extra_flags, f"--json={json_path}"]
    print(f"collect_bench: running {' '.join(command)}")
    result = subprocess.run(command, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    if result.returncode != 0:
        sys.stderr.write(result.stdout)
        fail(f"{binary} exited with status {result.returncode}")
    if not os.path.exists(json_path):
        fail(f"{binary} did not write its report to {json_path}")
    with open(json_path, encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as error:
            fail(f"{binary}: report is not valid JSON: {error}")
    if binary == "bench_kernels":
        validate_google_benchmark(report, binary)
        schema = "google-benchmark"
    else:
        validate_warp_bench_v1(report, binary)
        schema = "warp-bench-v1"
    case_count = len(report.get("cases", report.get("benchmarks", [])))
    print(f"collect_bench: {binary}: OK ({schema}, {case_count} cases)")
    return {"binary": binary, "flags": extra_flags, "schema": schema,
            "report": report}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree holding bench/ binaries")
    parser.add_argument("--out", default="bench_trajectory.json",
                        help="merged trajectory output file")
    args = parser.parse_args()

    runs = []
    with tempfile.TemporaryDirectory(prefix="warp-bench-") as json_dir:
        for binary, extra_flags in SUITE:
            runs.append(run_one(args.build_dir, binary, extra_flags, json_dir))

    trajectory = {
        "schema": "warp-bench-trajectory-v1",
        "suite": [{"binary": b, "flags": f} for b, f in SUITE],
        "runs": runs,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(f"collect_bench: wrote {len(runs)} validated reports to {args.out}")


if __name__ == "__main__":
    main()
