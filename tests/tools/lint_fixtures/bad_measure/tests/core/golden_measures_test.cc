namespace {

const char* GoldenNames() {
  static const char* kNames[] = {"dtw"};
  return kNames[0];
}

}  // namespace
