// k-means clustering under (c)DTW with DBA centroids.
//
// The "clustering" task from the paper's opening list of DTW
// applications, assembled from the library's own parts: assignment by
// exact banded DTW, centroid update by DTW Barycenter Averaging. The
// usual k-means caveats apply (local optima, seed sensitivity), so the
// seed is explicit and results are deterministic per seed.

#ifndef WARP_MINING_KMEANS_H_
#define WARP_MINING_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "warp/common/cost.h"

namespace warp {

struct KMeansOptions {
  size_t k = 2;
  size_t max_iterations = 10;
  // Sakoe–Chiba band for assignments and DBA; 0 = unconstrained.
  size_t band = 0;
  CostKind cost = CostKind::kSquared;
  uint64_t seed = 1;
  size_t dba_iterations = 3;
  // Worker threads for the assignment step and per-cluster DBA updates.
  // 1 = serial (default), 0 = DefaultThreadCount(). Results are bitwise
  // identical at any thread count: per-series assignments/distances land
  // in their own slots, the inertia reduction runs in series order on the
  // calling thread, and empty-cluster re-seeding draws from the RNG in
  // cluster order before any parallel work.
  size_t threads = 1;
};

struct KMeansResult {
  std::vector<std::vector<double>> centroids;    // k centroids.
  std::vector<int> assignment;                   // Per-series centroid id.
  double inertia = 0.0;                          // Sum of member distances.
  size_t iterations_run = 0;
  bool converged = false;                        // Assignment reached a fixed point.
};

// All series must be non-empty; k must be in [1, series.size()].
KMeansResult DtwKMeans(const std::vector<std::vector<double>>& series,
                       const KMeansOptions& options);

}  // namespace warp

#endif  // WARP_MINING_KMEANS_H_
