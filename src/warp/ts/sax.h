// SAX — Symbolic Aggregate approXimation (Lin, Keogh, Lonardi & Chiu).
//
// Discretizes a z-normalized series into a short word over a small
// alphabet: PAA segments are mapped to symbols by equiprobable Gaussian
// breakpoints. Two properties make it useful here:
//   * MINDIST between words lower-bounds the Euclidean distance between
//     the original (z-normalized) series — another pruning rung, and
//   * it is the classic index/summary representation of the Keogh-lab
//     tool chain the paper's ecosystem assumes.

#ifndef WARP_TS_SAX_H_
#define WARP_TS_SAX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace warp {

// Alphabet sizes 2..10 are supported (the standard breakpoint tables).
inline constexpr size_t kMinSaxAlphabet = 2;
inline constexpr size_t kMaxSaxAlphabet = 10;

// Gaussian breakpoints for `alphabet_size` equiprobable regions:
// alphabet_size - 1 ascending values.
std::span<const double> SaxBreakpoints(size_t alphabet_size);

// The SAX word of `values`: z-normalize, PAA to word_length, discretize.
// Symbols are 0..alphabet_size-1 (0 = lowest region).
std::vector<uint8_t> SaxWord(std::span<const double> values,
                             size_t word_length, size_t alphabet_size);

// Human-readable rendering ('a' = 0, 'b' = 1, ...).
std::string SaxWordToString(std::span<const uint8_t> word);

// Squared MINDIST between two SAX words of series of length
// `original_length`:
//   (n / w) * sum_i cell(a_i, b_i)^2,
// where cell() is the breakpoint gap (zero for adjacent symbols). This
// lower-bounds the *squared* Euclidean distance between the z-normalized
// originals — the same convention as EuclideanDistance(CostKind::kSquared)
// on z-normalized inputs.
double SaxMinDistSquared(std::span<const uint8_t> a,
                         std::span<const uint8_t> b, size_t original_length,
                         size_t alphabet_size);

}  // namespace warp

#endif  // WARP_TS_SAX_H_
