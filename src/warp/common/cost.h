// Local (per-cell) cost functions for DTW and friends.
//
// The paper's recurrence uses the squared difference; the reference
// FastDTW implementation defaults to the absolute difference. Both are
// provided. Kernels are templated on the functor so the choice costs
// nothing at runtime; public entry points take the CostKind enum and
// dispatch once per call.

#ifndef WARP_COMMON_COST_H_
#define WARP_COMMON_COST_H_

#include <cmath>
#include <cstdint>

namespace warp {

enum class CostKind {
  kSquared,   // (a - b)^2 — the paper's Eq. in Section 2.
  kAbsolute,  // |a - b|  — the reference FastDTW library's default.
};

struct SquaredCost {
  static constexpr CostKind kKind = CostKind::kSquared;
  double operator()(double a, double b) const {
    const double d = a - b;
    return d * d;
  }
};

struct AbsoluteCost {
  static constexpr CostKind kKind = CostKind::kAbsolute;
  double operator()(double a, double b) const { return std::fabs(a - b); }
};

// Dispatches `fn` (a generic callable) with the functor matching `kind`.
template <typename Fn>
decltype(auto) WithCost(CostKind kind, Fn&& fn) {
  switch (kind) {
    case CostKind::kAbsolute:
      return fn(AbsoluteCost{});
    case CostKind::kSquared:
    default:
      return fn(SquaredCost{});
  }
}

}  // namespace warp

#endif  // WARP_COMMON_COST_H_
