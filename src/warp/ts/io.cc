#include "warp/ts/io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace warp {

namespace {

bool IsSeparator(char c) {
  return c == '\t' || c == ',' || c == ' ' || c == '\r';
}

// Splits on any run of separators.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && IsSeparator(line[i])) ++i;
    size_t start = i;
    while (i < line.size() && !IsSeparator(line[i])) ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

bool ParseDouble(const std::string& token, double* value) {
  char* end = nullptr;
  *value = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size() && std::isfinite(*value);
}

}  // namespace

bool ParseUcrLine(const std::string& line, TimeSeries* series,
                  std::string* error) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() < 2) {
    *error = "line must contain a label and at least one value";
    return false;
  }
  double label_value = 0.0;
  if (!ParseDouble(tokens[0], &label_value)) {
    *error = "unparseable class label: '" + tokens[0] + "'";
    return false;
  }
  std::vector<double> values;
  values.reserve(tokens.size() - 1);
  for (size_t i = 1; i < tokens.size(); ++i) {
    double v = 0.0;
    if (!ParseDouble(tokens[i], &v)) {
      *error = "unparseable or non-finite value: '" + tokens[i] + "'";
      return false;
    }
    values.push_back(v);
  }
  *series = TimeSeries(std::move(values), static_cast<int>(label_value));
  return true;
}

bool LoadUcrFile(const std::string& path, Dataset* dataset,
                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open file: " + path;
    return false;
  }
  Dataset result;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    TimeSeries series;
    std::string parse_error;
    if (!ParseUcrLine(line, &series, &parse_error)) {
      *error = path + ":" + std::to_string(line_number) + ": " + parse_error;
      return false;
    }
    result.Add(std::move(series));
  }
  if (result.empty()) {
    *error = "file contains no series: " + path;
    return false;
  }
  result.set_name(path);
  *dataset = std::move(result);
  return true;
}

bool SaveUcrFile(const std::string& path, const Dataset& dataset,
                 std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open file for writing: " + path;
    return false;
  }
  out.precision(17);
  for (const auto& series : dataset.series()) {
    out << series.label();
    for (double v : series.values()) out << '\t' << v;
    out << '\n';
  }
  if (!out) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

bool LoadSeriesFile(const std::string& path, TimeSeries* series,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open file: " + path;
    return false;
  }
  std::vector<double> values;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    for (const std::string& token : Tokenize(line)) {
      double v = 0.0;
      if (!ParseDouble(token, &v)) {
        *error = path + ":" + std::to_string(line_number) +
                 ": unparseable or non-finite value: '" + token + "'";
        return false;
      }
      values.push_back(v);
    }
  }
  if (values.empty()) {
    *error = "file contains no values: " + path;
    return false;
  }
  *series = TimeSeries(std::move(values));
  return true;
}

bool SaveSeriesFile(const std::string& path, const TimeSeries& series,
                    std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open file for writing: " + path;
    return false;
  }
  out.precision(17);
  for (double v : series.values()) out << v << '\n';
  if (!out) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace warp
