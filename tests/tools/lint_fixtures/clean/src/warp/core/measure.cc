#include "warp/core/measure.h"

namespace warp {
namespace core {

const char* RegistryNote() {
  // Shape mirrors the real registry: {{name, summary, exact}, handler}.
  static const MeasureEntry kEntries[] = {
      {{"dtw", "unconstrained DTW", true}, nullptr},
      {{"fastdtw", "multiresolution approximate DTW", false}, nullptr},
  };
  (void)kEntries;
  return "registry";
}

}  // namespace core
}  // namespace warp
