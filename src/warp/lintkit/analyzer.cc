#include "warp/lintkit/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "warp/lintkit/lexer.h"
#include "warp/lintkit/project_rules.h"
#include "warp/lintkit/rules_util.h"
#include "warp/lintkit/token_rules.h"

namespace warp {
namespace lintkit {

namespace {

namespace fs = std::filesystem;

constexpr const char* kRoots[] = {"src", "tools", "tests", "bench",
                                  "examples"};
constexpr const char* kFixtureDirName = "lint_fixtures";
constexpr const char* kPragmaRule = "pragma-hygiene";

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp";
}

// Root-relative, '/'-separated path.
std::string RelativePath(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

bool UnderFixtureDir(const fs::path& relative) {
  for (const fs::path& part : relative) {
    if (part.string() == kFixtureDirName) return true;
  }
  return false;
}

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<RuleStatus> BuildRuleList() {
  std::vector<RuleStatus> rules;
  for (const TokenRule& rule : TokenRules()) {
    rules.push_back({rule.id, rule.summary, /*cross_file=*/false,
                     /*enabled=*/true});
  }
  for (const ProjectRule& rule : ProjectRules()) {
    rules.push_back({rule.id, rule.summary, /*cross_file=*/true,
                     /*enabled=*/true});
  }
  rules.push_back({kPragmaRule,
                   "allow() pragmas are well-formed, explained, name known "
                   "rules, and suppress something",
                   /*cross_file=*/true, /*enabled=*/true});
  return rules;
}

}  // namespace

const std::vector<RuleStatus>& AllRules() {
  static const std::vector<RuleStatus> rules = BuildRuleList();
  return rules;
}

bool IsKnownRule(const std::string& id) {
  for (const RuleStatus& rule : AllRules()) {
    if (rule.id == id) return true;
  }
  return false;
}

AnalyzerResult RunAnalyzer(const AnalyzerConfig& config) {
  AnalyzerResult result;
  const std::set<std::string> disabled(config.disabled_rules.begin(),
                                       config.disabled_rules.end());
  for (const std::string& id : disabled) {
    if (!IsKnownRule(id)) {
      result.errors.push_back("unknown rule in disable list: " + id);
    }
  }

  const fs::path root(config.root);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    result.errors.push_back("root is not a directory: " + config.root);
    return result;
  }

  // Discover and lex, in sorted order so runs are deterministic.
  std::vector<std::string> paths;
  bool any_root = false;
  for (const char* subdir : kRoots) {
    const fs::path dir = root / subdir;
    if (!fs::is_directory(dir, ec)) continue;
    any_root = true;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      if (!HasLintableExtension(it->path())) continue;
      const std::string rel = RelativePath(it->path(), root);
      if (UnderFixtureDir(rel)) continue;
      paths.push_back(rel);
    }
  }
  if (!any_root) {
    result.errors.push_back(
        "no source roots (src/tools/tests/bench/examples) under: " +
        config.root);
    return result;
  }
  std::sort(paths.begin(), paths.end());

  std::vector<LexedFile> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    files.push_back(LexFile(rel, ReadFileOrEmpty(root / rel)));
  }
  result.files_scanned = files.size();

  // Run the rules.
  std::vector<Finding> raw;
  for (const TokenRule& rule : TokenRules()) {
    if (disabled.count(rule.id) != 0) continue;
    for (const LexedFile& file : files) rule.run(file, &raw);
  }
  ProjectContext context;
  context.files = &files;
  context.tests_cmake = ReadFileOrEmpty(root / "tests" / "CMakeLists.txt");
  for (const ProjectRule& rule : ProjectRules()) {
    if (disabled.count(rule.id) != 0) continue;
    rule.run(context, &raw);
  }

  // Apply suppressions. pragma_used[file][i] marks pragma i of that file
  // as having suppressed at least one finding.
  std::vector<std::vector<bool>> pragma_used(files.size());
  for (size_t f = 0; f < files.size(); ++f) {
    pragma_used[f].assign(files[f].pragmas.size(), false);
  }
  auto file_index = [&files](const std::string& path) -> size_t {
    for (size_t f = 0; f < files.size(); ++f) {
      if (files[f].path == path) return f;
    }
    return files.size();
  };

  for (Finding& finding : raw) {
    bool suppressed = false;
    const size_t f = file_index(finding.file);
    if (f < files.size() && finding.line > 0) {
      const std::vector<AllowPragma>& pragmas = files[f].pragmas;
      for (size_t p = 0; p < pragmas.size(); ++p) {
        const AllowPragma& pragma = pragmas[p];
        if (pragma.malformed || pragma.reason.empty()) continue;
        const bool covers =
            finding.line == pragma.line ||
            (pragma.covers_next && finding.line == pragma.line + 1);
        if (!covers) continue;
        if (std::find(pragma.rules.begin(), pragma.rules.end(),
                      finding.rule) == pragma.rules.end()) {
          continue;
        }
        SuppressedFinding entry;
        entry.finding = finding;
        entry.reason = pragma.reason;
        entry.pragma_line = pragma.line;
        result.suppressed.push_back(std::move(entry));
        pragma_used[f][p] = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) result.findings.push_back(std::move(finding));
  }

  // Pragma hygiene: every allow() must be well-formed, explained, name
  // known enabled rules, and earn its keep by suppressing something.
  if (disabled.count(kPragmaRule) == 0) {
    for (size_t f = 0; f < files.size(); ++f) {
      const std::vector<AllowPragma>& pragmas = files[f].pragmas;
      for (size_t p = 0; p < pragmas.size(); ++p) {
        const AllowPragma& pragma = pragmas[p];
        Finding finding;
        finding.rule = kPragmaRule;
        finding.file = files[f].path;
        finding.line = pragma.line;
        finding.col = 1;
        if (pragma.malformed) {
          finding.message =
              "malformed warp-lint pragma — expected "
              "\"warp-lint: allow(<rule>[, <rule>...]): <reason>\"";
          result.findings.push_back(std::move(finding));
          continue;
        }
        bool names_disabled_rule = false;
        for (const std::string& rule : pragma.rules) {
          if (!IsKnownRule(rule)) {
            Finding unknown = finding;
            unknown.message = "allow() names unknown rule '" + rule + "'";
            result.findings.push_back(std::move(unknown));
          } else if (disabled.count(rule) != 0) {
            names_disabled_rule = true;
          }
        }
        if (pragma.reason.empty()) {
          finding.message =
              "unexplained allow() pragma — append \": <reason>\"";
          result.findings.push_back(std::move(finding));
          continue;
        }
        if (!pragma_used[f][p] && !names_disabled_rule) {
          finding.message =
              "allow() pragma suppresses nothing — remove it or fix the "
              "rule list";
          result.findings.push_back(std::move(finding));
        }
      }
    }
  }

  SortFindings(&result.findings);
  std::sort(result.suppressed.begin(), result.suppressed.end(),
            [](const SuppressedFinding& a, const SuppressedFinding& b) {
              return std::tie(a.finding.file, a.finding.line, a.finding.rule) <
                     std::tie(b.finding.file, b.finding.line, b.finding.rule);
            });
  return result;
}

std::string ResultToJson(const AnalyzerConfig& config,
                         const AnalyzerResult& result) {
  const std::set<std::string> disabled(config.disabled_rules.begin(),
                                       config.disabled_rules.end());
  LintDocument doc;
  doc.root = config.root;
  doc.files_scanned = result.files_scanned;
  doc.rules = AllRules();
  for (RuleStatus& rule : doc.rules) {
    rule.enabled = disabled.count(rule.id) == 0;
  }
  doc.findings = result.findings;
  doc.suppressed = result.suppressed;
  doc.errors = result.errors;
  return ToJson(doc);
}

}  // namespace lintkit
}  // namespace warp
