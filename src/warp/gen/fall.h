// The Case-D "fall" generator (paper Fig. 5).
//
// Models the paper's motion-capture thought experiment: actors fall over
// at some point within an L-second window recorded at 100 Hz. One series
// has an immediate fall followed by near-motionlessness; the other is
// near-motionless until a fall just before the window ends. Aligning the
// two falls requires warping by ~100% of the length — the only setting in
// which the paper found FastDTW ever overtakes exact DTW.

#ifndef WARP_GEN_FALL_H_
#define WARP_GEN_FALL_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "warp/common/random.h"

namespace warp {
namespace gen {

// One fall trace of `n` samples. The fall transient (a sharp level drop
// with a damped oscillation) occupies roughly 0.7 s at 100 Hz and starts
// at `fall_start`; elsewhere the actor is near-motionless (small sensor
// noise around the pre/post-fall levels).
std::vector<double> MakeFallTrace(size_t n, size_t fall_start, Rng& rng,
                                  double noise_stddev = 0.01);

// The paper's pair for an L-second window at `hz`: an immediate fall and a
// fall ending just before the window closes.
std::pair<std::vector<double>, std::vector<double>> MakeFallPair(
    double seconds, double hz, Rng& rng);

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_FALL_H_
