// Quickstart: the warp library in five minutes.
//
// Computes the distances the paper is about — Euclidean, constrained DTW
// (cDTW_w), Full DTW, and FastDTW — on a pair of series where warping
// matters, recovers the optimal alignment, and shows why the paper
// recommends cDTW: exact, faster, and windowed to the domain's natural
// warping amount W.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "warp/common/random.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"
#include "warp/ts/znorm.h"

int main() {
  // Two versions of the same pattern: y is x under a smooth time warp of
  // at most 5% of the length — a typical Case-A pair (heartbeats,
  // gestures, signatures...).
  warp::Rng rng(42);
  const std::vector<double> x =
      warp::ZNormalized(warp::gen::RandomWalk(500, rng));
  const std::vector<double> y =
      warp::ZNormalized(warp::gen::ApplyRandomWarp(x, 0.05, rng));

  // --- Distances ---------------------------------------------------------
  const double euclidean = warp::EuclideanDistance(x, y);
  // The paper's recommendation: exact DTW constrained to the domain's
  // natural warping amount (here W = 5%, so w = 6% is comfortable).
  const double cdtw = warp::CdtwDistanceFraction(x, y, 0.06);
  const double full = warp::DtwDistance(x, y);
  const warp::DtwResult fast = warp::FastDtw(x, y, /*radius=*/10);

  std::printf("Euclidean (cDTW_0)    : %10.4f   <- no warping allowed\n",
              euclidean);
  std::printf("cDTW_6%% (recommended) : %10.4f   <- exact, windowed\n",
              cdtw);
  std::printf("Full DTW (cDTW_100)   : %10.4f   <- exact, unconstrained\n",
              full);
  std::printf("FastDTW_10            : %10.4f   <- approximate (always >= "
              "Full DTW)\n\n",
              fast.distance);

  // --- Alignment ---------------------------------------------------------
  const warp::DtwResult alignment =
      warp::Cdtw(x, y, /*band=*/30);  // 6% of 500.
  std::printf("optimal warping path: %zu steps, max |i-j| deviation %u "
              "samples\n",
              alignment.path.size(),
              alignment.path.MaxDiagonalDeviation());
  std::printf("first steps:");
  for (size_t k = 0; k < 6 && k < alignment.path.size(); ++k) {
    std::printf(" (%u,%u)", alignment.path[k].i, alignment.path[k].j);
  }
  std::printf(" ...\n\n");

  // --- Work accounting ----------------------------------------------------
  uint64_t cdtw_cells = 0;
  warp::CdtwDistance(x, y, 30, warp::CostKind::kSquared, nullptr,
                     &cdtw_cells);
  std::printf("DP cells evaluated: cDTW_6%% %llu vs FastDTW_10 %llu "
              "(plus FastDTW's recursion/window overhead)\n",
              static_cast<unsigned long long>(cdtw_cells),
              static_cast<unsigned long long>(fast.cells_visited));

  std::printf(
      "\nTakeaway (Wu & Keogh, ICDE 2021): if you know your domain's "
      "warping amount — and you almost always do — exact cDTW_w is both "
      "faster and exact; FastDTW approximates the answer you did not "
      "want (unconstrained DTW) slower than you can compute the answer "
      "you did want.\n");
  return 0;
}
