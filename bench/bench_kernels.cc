// Experiment E10 — supporting micro-benchmarks (google-benchmark).
//
// Kernel-level scaling of the DTW family: how Full DTW, cDTW, FastDTW,
// the lower bounds, and the envelope computation scale with N, w, and r.
// These are the numbers behind every macro experiment: cDTW_w costs
// O(N*w) with a tiny constant; FastDTW costs O(N*r) with a much larger
// constant (recursion, window bookkeeping, path recovery) — which is the
// paper's whole story.
//
// Accepts --json=<path> like every other bench binary; it is translated
// into google-benchmark's --benchmark_out/--benchmark_out_format pair, so
// collect_bench.py can treat all harnesses uniformly (this one emits the
// google-benchmark schema, not warp-bench-v1).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "warp/core/dtw.h"
#include "warp/core/envelope.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/core/lower_bounds.h"
#include "warp/gen/random_walk.h"
#include "warp/mining/matrix_profile.h"
#include "warp/simd/dispatch.h"

namespace warp {
namespace {

std::vector<double> MakeWalk(size_t n, uint64_t seed) {
  Rng rng(seed);
  return gen::RandomWalk(n, rng);
}

void BM_FullDtw(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = MakeWalk(n, 1);
  const auto y = MakeWalk(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_FullDtw)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

// The SIMD A/B pairs (docs/SIMD.md): each vectorized kernel runs once
// under the process-wide --simd mode (auto unless overridden) and once
// pinned to the scalar path, so a single run reports the speedup. The
// *Scalar twins share the measurement body with their primaries.

void RunCdtw(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t w_percent = static_cast<size_t>(state.range(1));
  const auto x = MakeWalk(n, 3);
  const auto y = MakeWalk(n, 4);
  const size_t band = n * w_percent / 100;
  DtwBuffer buffer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CdtwDistance(x, y, band, CostKind::kSquared, &buffer));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * (2 * band + 1)));
}

void BM_Cdtw(benchmark::State& state) { RunCdtw(state); }
BENCHMARK(BM_Cdtw)
    ->Args({128, 5})
    ->Args({128, 10})
    ->Args({945, 4})
    ->Args({945, 20})
    ->Args({24000, 1});

void BM_CdtwScalar(benchmark::State& state) {
  simd::ScopedSimdMode scalar(simd::SimdMode::kOff);
  RunCdtw(state);
}
BENCHMARK(BM_CdtwScalar)->Args({945, 4})->Args({945, 20})->Args({24000, 1});

void BM_FastDtw(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t radius = static_cast<size_t>(state.range(1));
  const auto x = MakeWalk(n, 5);
  const auto y = MakeWalk(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FastDtwDistance(x, y, radius));
  }
}
BENCHMARK(BM_FastDtw)
    ->Args({128, 10})
    ->Args({945, 0})
    ->Args({945, 10})
    ->Args({945, 20})
    ->Args({24000, 10});

void BM_ReferenceFastDtw(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t radius = static_cast<size_t>(state.range(1));
  const auto x = MakeWalk(n, 5);
  const auto y = MakeWalk(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReferenceFastDtw(x, y, radius).distance);
  }
}
BENCHMARK(BM_ReferenceFastDtw)->Args({128, 10})->Args({945, 10});

void BM_PrunedCdtw(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t w_percent = static_cast<size_t>(state.range(1));
  const auto x = MakeWalk(n, 3);
  const auto y = MakeWalk(n, 4);
  const size_t band = n * w_percent / 100;
  DtwBuffer buffer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrunedCdtwDistance(
        x, y, band, CostKind::kSquared, -1.0, &buffer));
  }
}
BENCHMARK(BM_PrunedCdtw)->Args({945, 4})->Args({945, 20});

void BM_MatrixProfile(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto series = MakeWalk(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMatrixProfile(series, 64).profile[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) *
                          static_cast<int64_t>(n) / 2);
}
BENCHMARK(BM_MatrixProfile)->Arg(2000)->Arg(8000);

// Second arg is the band: narrow bands take the doubling SIMD sweep
// under --simd=auto, bands past kEnvelopeAutoMaxBand fall back to the
// deque (see docs/SIMD.md), so the pairs below cover both sides of the
// gate.
void RunEnvelope(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t band = static_cast<size_t>(state.range(1));
  const auto x = MakeWalk(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeEnvelope(x, band));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_Envelope(benchmark::State& state) { RunEnvelope(state); }
BENCHMARK(BM_Envelope)
    ->Args({128, 12})
    ->Args({1024, 16})
    ->Args({1024, 102})
    ->Args({16384, 16})
    ->Args({16384, 1638});

void BM_EnvelopeScalar(benchmark::State& state) {
  simd::ScopedSimdMode scalar(simd::SimdMode::kOff);
  RunEnvelope(state);
}
BENCHMARK(BM_EnvelopeScalar)
    ->Args({1024, 16})
    ->Args({1024, 102})
    ->Args({16384, 16})
    ->Args({16384, 1638});

// `tight` clamps the candidate into the query tube — the cascade's
// surviving-candidate shape, where the SIMD block skip does all the
// work. The default independent walk wanders far outside the tube, so
// it exercises the dirty-streak bail instead (near-scalar cost).
void RunLbKeogh(benchmark::State& state, bool tight) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto q = MakeWalk(n, 8);
  auto c = MakeWalk(n, 9);
  const Envelope env = ComputeEnvelope(q, n / 20);
  if (tight) {
    for (size_t i = 0; i < n; ++i) {
      c[i] = std::clamp(c[i], env.lower[i], env.upper[i]);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbKeogh(env, c));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_LbKeogh(benchmark::State& state) { RunLbKeogh(state, false); }
BENCHMARK(BM_LbKeogh)->Arg(128)->Arg(1024)->Arg(16384);

void BM_LbKeoghScalar(benchmark::State& state) {
  simd::ScopedSimdMode scalar(simd::SimdMode::kOff);
  RunLbKeogh(state, false);
}
BENCHMARK(BM_LbKeoghScalar)->Arg(1024)->Arg(16384);

void BM_LbKeoghTight(benchmark::State& state) { RunLbKeogh(state, true); }
BENCHMARK(BM_LbKeoghTight)->Arg(1024)->Arg(16384);

void BM_LbKeoghTightScalar(benchmark::State& state) {
  simd::ScopedSimdMode scalar(simd::SimdMode::kOff);
  RunLbKeogh(state, true);
}
BENCHMARK(BM_LbKeoghTightScalar)->Arg(1024)->Arg(16384);

// The ratio the paper turns on: exact banded DTW vs FastDTW at matched
// "serviceable approximation" settings (w = 20%, r = 10; see Fig. 1).
void BM_HeadToHead_Cdtw20(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = MakeWalk(n, 10);
  const auto y = MakeWalk(n, 11);
  DtwBuffer buffer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CdtwDistance(x, y, n / 5, CostKind::kSquared, &buffer));
  }
}
BENCHMARK(BM_HeadToHead_Cdtw20)->Arg(128)->Arg(450)->Arg(945)->Arg(4000);

void BM_HeadToHead_FastDtw10(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = MakeWalk(n, 10);
  const auto y = MakeWalk(n, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FastDtwDistance(x, y, 10));
  }
}
BENCHMARK(BM_HeadToHead_FastDtw10)->Arg(128)->Arg(450)->Arg(945)->Arg(4000);

}  // namespace
}  // namespace warp

// Hand-rolled main instead of BENCHMARK_MAIN(): rewrite --json=<path>
// into the native output flags, consume --simd=<mode> ourselves (the
// google-benchmark parser would reject it), pass everything else through.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      args.push_back(std::string("--benchmark_out=") + (arg + 7));
      args.push_back("--benchmark_out_format=json");
    } else if (std::strncmp(arg, "--simd=", 7) == 0) {
      warp::simd::SimdMode mode;
      if (!warp::simd::ParseSimdMode(arg + 7, &mode)) {
        std::fprintf(stderr,
                     "error: invalid --simd=%s (expected on, off, or auto)\n",
                     arg + 7);
        return 2;
      }
      warp::simd::SetSimdMode(mode);
    } else {
      args.push_back(arg);
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& arg : args) argv2.push_back(arg.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
