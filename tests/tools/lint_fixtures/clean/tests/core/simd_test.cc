#include "warp/core/measure.h"

namespace {

int ParityOverRegistry() {
  int n = 0;
  for (const auto& measure : RegisteredMeasures()) {
    (void)measure;
    ++n;
  }
  return n;
}

}  // namespace
