// Time-series discord discovery (anomaly detection).
//
// The "anomaly detection" task from the paper's opening list. A discord
// is the subsequence whose nearest non-self-overlapping neighbor is
// farthest away — the most anomalous window of a long series. This is the
// classic brute-force-with-pruning formulation: the outer candidate is
// abandoned as soon as any neighbor falls below the best discord distance
// found so far, and the inner distance computation early-abandons at the
// candidate's current nearest-neighbor bound.

#ifndef WARP_MINING_ANOMALY_H_
#define WARP_MINING_ANOMALY_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "warp/common/cost.h"

namespace warp {

struct Discord {
  size_t position = 0;          // Start of the discord window.
  double nn_distance = 0.0;     // Distance to its nearest neighbor.
  size_t nn_position = 0;       // That neighbor's start.
};

struct DiscordStats {
  uint64_t candidates = 0;
  uint64_t distance_calls = 0;
  uint64_t abandoned_candidates = 0;  // Outer loop cut short.
};

// Finds the top discord of window length m under z-normalized cDTW_band
// (band 0 = Euclidean). Windows overlapping by any amount are not
// neighbors of each other (self-match exclusion |i - j| >= m). The series
// must have at least 2*m points. `stride` examines every stride-th
// candidate/neighbor (1 = exact).
Discord FindTopDiscord(std::span<const double> series, size_t m, size_t band,
                       CostKind cost = CostKind::kSquared, size_t stride = 1,
                       DiscordStats* stats = nullptr);

// The mirror problem ("summarization / rule discovery" in the paper's
// task list): the top motif is the closest pair of non-overlapping
// z-normalized windows.
struct Motif {
  size_t position_a = 0;
  size_t position_b = 0;
  double distance = 0.0;
};

Motif FindTopMotif(std::span<const double> series, size_t m, size_t band,
                   CostKind cost = CostKind::kSquared, size_t stride = 1,
                   DiscordStats* stats = nullptr);

}  // namespace warp

#endif  // WARP_MINING_ANOMALY_H_
