// warp_serve — the loopback query server as a standalone binary.
//
//   warp_serve --gen=rw=200,128 --threads=4
//   warp_serve --data=train=datasets/GunPoint_TRAIN.tsv --port=7070
//
// Prints "warp_serve listening on 127.0.0.1:<port>" once bound, then
// serves line-delimited JSON requests until a client sends
// {"op":"shutdown"}. Protocol: docs/SERVING.md. Flags: tools/serve_main.h
// (shared with `warp_cli serve`).

#include <cstdio>
#include <cstring>

#include "serve_main.h"

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "help") == 0 ||
                   std::strcmp(argv[1], "--help") == 0)) {
    std::fputs(
        "warp_serve — loopback DTW query server (docs/SERVING.md)\n"
        "  --port=N                 listen port (default 0 = auto)\n"
        "  --threads=N              engine workers (default 1; 0 = cores)\n"
        "  --shards=N               store shards per dataset (default 1)\n"
        "  --cache=N                result-cache entries (default 256)\n"
        "  --bands=F,F              indexed window fractions (default .05,.1)\n"
        "  --data=NAME=PATH         serve a UCR file (repeatable)\n"
        "  --gen=NAME=COUNT,LEN[,SEED]  serve a synthetic random-walk set\n"
        "  --snapshot-dir=PATH      auto-load *.wsnap snapshots at startup\n"
        "  --max-queue-depth=N      admission gate: pending submissions\n"
        "                           beyond N fast-fail \"overloaded\" (0=off)\n"
        "  --worker --shard-id=K --shard-count=N\n"
        "                           cluster worker mode: serve only shard K\n"
        "                           of N; queries must arrive stamped\n"
        "                           \"shard\":K (docs/SERVING.md)\n",
        stdout);
    return 0;
  }
  return warp::tools::ServeToolMain(warp::tools::ParseToolFlags(argc, argv, 1));
}
