#include "warp/core/ddtw.h"

#include "warp/common/assert.h"

namespace warp {

std::vector<double> DerivativeTransform(std::span<const double> values) {
  WARP_CHECK_MSG(values.size() >= 3,
                 "derivative transform needs at least 3 points");
  const size_t n = values.size();
  std::vector<double> derivative(n);
  for (size_t i = 1; i + 1 < n; ++i) {
    derivative[i] =
        ((values[i] - values[i - 1]) + (values[i + 1] - values[i - 1]) / 2.0) /
        2.0;
  }
  derivative[0] = derivative[1];
  derivative[n - 1] = derivative[n - 2];
  return derivative;
}

double DdtwDistance(std::span<const double> x, std::span<const double> y,
                    size_t band, CostKind cost, DtwWorkspace* workspace) {
  const std::vector<double> dx = DerivativeTransform(x);
  const std::vector<double> dy = DerivativeTransform(y);
  return CdtwDistance(dx, dy, band, cost, workspace);
}

DtwResult Ddtw(std::span<const double> x, std::span<const double> y,
               size_t band, CostKind cost) {
  const std::vector<double> dx = DerivativeTransform(x);
  const std::vector<double> dy = DerivativeTransform(y);
  return Cdtw(dx, dy, band, cost);
}

}  // namespace warp
