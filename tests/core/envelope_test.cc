// Unit tests for the Lemire streaming envelope.

#include "warp/core/envelope.h"

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(EnvelopeTest, BandZeroIsTheSeriesItself) {
  const std::vector<double> x = {3.0, 1.0, 4.0, 1.0, 5.0};
  const Envelope env = ComputeEnvelope(x, 0);
  EXPECT_EQ(env.upper, x);
  EXPECT_EQ(env.lower, x);
}

TEST(EnvelopeTest, HugeBandIsGlobalMinMax) {
  const std::vector<double> x = {3.0, 1.0, 4.0, 1.0, 5.0};
  const Envelope env = ComputeEnvelope(x, 100);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(env.upper[i], 5.0);
    EXPECT_DOUBLE_EQ(env.lower[i], 1.0);
  }
}

TEST(EnvelopeTest, SmallHandExample) {
  const std::vector<double> x = {0.0, 2.0, 1.0, 3.0};
  const Envelope env = ComputeEnvelope(x, 1);
  EXPECT_EQ(env.upper, (std::vector<double>{2.0, 2.0, 3.0, 3.0}));
  EXPECT_EQ(env.lower, (std::vector<double>{0.0, 0.0, 1.0, 1.0}));
}

TEST(EnvelopeTest, EnvelopeSandwichesSeries) {
  Rng rng(41);
  const std::vector<double> x = gen::RandomWalk(300, rng);
  for (size_t band : {0u, 1u, 5u, 20u}) {
    const Envelope env = ComputeEnvelope(x, band);
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_LE(env.lower[i], x[i]);
      EXPECT_GE(env.upper[i], x[i]);
    }
  }
}

TEST(EnvelopeTest, StreamingMatchesNaiveReference) {
  Rng rng(42);
  for (int round = 0; round < 10; ++round) {
    const size_t n = 1 + rng.UniformInt(200);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    for (size_t band : {0u, 1u, 2u, 7u, 50u, 500u}) {
      const Envelope fast = ComputeEnvelope(x, band);
      const Envelope naive = ComputeEnvelopeNaive(x, band);
      EXPECT_EQ(fast.upper, naive.upper) << "n=" << n << " band=" << band;
      EXPECT_EQ(fast.lower, naive.lower) << "n=" << n << " band=" << band;
    }
  }
}

TEST(EnvelopeTest, WiderBandLoosensEnvelope) {
  Rng rng(43);
  const std::vector<double> x = gen::RandomWalk(100, rng);
  const Envelope narrow = ComputeEnvelope(x, 2);
  const Envelope wide = ComputeEnvelope(x, 10);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(wide.lower[i], narrow.lower[i]);
    EXPECT_GE(wide.upper[i], narrow.upper[i]);
  }
}

}  // namespace
}  // namespace warp
