#include "warp/core/engine.h"

#include <vector>

#include "warp/common/metrics.h"

namespace warp {
int EngineAnswer() {
  obs::Bump(obs::Counter::kDpCells);
  obs::Bump(obs::Counter::kLbHits);
  return 42;
}
}  // namespace warp
