#!/usr/bin/env bash
# Loopback serving smoke test (CI job `serve-smoke`).
#
# Starts warp_serve on a kernel-assigned port with a generated dataset,
# drives a scripted mix of control ops and pipelined queries through
# `warp_cli query`, and asserts:
#   * the server comes up and answers ping/info/stats;
#   * the `metrics` op emits schema-valid warp-metrics-v1 text (validated
#     line-by-line by an inline python3 checker: sample-line grammar,
#     cumulative buckets, +Inf == _count) and `slowlog` drains cleanly;
#   * query answers are deterministic (the same request twice, one cold
#     and one from the result cache, yields byte-identical responses);
#   * pipelined lines each get exactly one response, in order;
#   * a save_snapshot -> restart-from---snapshot-dir round trip (at a
#     different shard count) answers the same query byte-identically;
#   * `shutdown` stops the server with exit code 0 (clean shutdown).
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR]   (default: build)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
SERVE="$BUILD_DIR/tools/warp_serve"
CLI="$BUILD_DIR/tools/warp_cli"
WORK="$(mktemp -d)"
SERVER_PID=""
SERVER2_PID=""

fail() {
  echo "SMOKE FAIL: $*" >&2
  [ -f "$WORK/server.log" ] && sed 's/^/  server: /' "$WORK/server.log" >&2
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2> /dev/null
  [ -n "$SERVER2_PID" ] && kill "$SERVER2_PID" 2> /dev/null
  rm -rf "$WORK"
  exit 1
}

[ -x "$SERVE" ] || fail "$SERVE not built (run cmake --build $BUILD_DIR first)"
[ -x "$CLI" ] || fail "$CLI not built"

# --- Start the server on a kernel-assigned port -----------------------------
"$SERVE" --gen=smoke=40,64 --threads=2 --shards=2 --cache=128 > "$WORK/server.log" &
SERVER_PID=$!

# The bound port comes from the machine-readable "ready port=<P>" line
# (the server binds --port=0, so nothing here hard-codes a port).
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^ready port=\([0-9]*\)$/\1/p' \
      "$WORK/server.log" 2> /dev/null)"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2> /dev/null || fail "server exited before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never printed its listening line"
echo "smoke: server up on port $PORT (pid $SERVER_PID)"

# --- A pipelined mix: control ops + queries, with a repeated query ----------
QUERY='[0.1, 0.7, 1.3, 0.9, 0.2, -0.4, -1.1, -0.6, 0.3, 1.0]'
{
  echo '{"id": 1, "op": "ping"}'
  echo '{"id": 2, "op": "info", "dataset": "smoke"}'
  echo '{"id": 3, "op": "1nn", "dataset": "smoke", "query": '"$QUERY"'}'
  echo '{"id": 4, "op": "knn", "dataset": "smoke", "k": 3, "query": '"$QUERY"'}'
  echo '{"id": 3, "op": "1nn", "dataset": "smoke", "query": '"$QUERY"'}'
  echo '{"id": 5, "op": "stats"}'
} > "$WORK/requests.txt"

"$CLI" query --port="$PORT" < "$WORK/requests.txt" > "$WORK/responses.txt" \
    || fail "warp_cli query exited nonzero"

LINES="$(wc -l < "$WORK/responses.txt")"
[ "$LINES" -eq 6 ] || fail "expected 6 response lines, got $LINES"

grep -q '"id":1,"ok":true' "$WORK/responses.txt" || fail "ping not ok"
grep -q '"dataset":"smoke","size":40,"length":64' "$WORK/responses.txt" \
    || fail "info wrong: $(sed -n 2p "$WORK/responses.txt")"
grep -q '"shards":2' "$WORK/responses.txt" \
    || fail "info missing shard count: $(sed -n 2p "$WORK/responses.txt")"
grep -q '"serve_requests"' "$WORK/responses.txt" || fail "stats missing counters"
grep -q '"gauges":{' "$WORK/responses.txt" || fail "stats missing gauges"
grep -q '"slowlog":{' "$WORK/responses.txt" || fail "stats missing slowlog"

# Determinism: the repeated 1nn request (lines 3 and 5; the second is a
# result-cache hit) must produce byte-identical responses.
FIRST="$(sed -n 3p "$WORK/responses.txt")"
REPEAT="$(sed -n 5p "$WORK/responses.txt")"
echo "$FIRST" | grep -q '"ok":true' || fail "1nn failed: $FIRST"
[ "$FIRST" = "$REPEAT" ] || fail "cold vs cached 1nn diverged:
  cold:   $FIRST
  cached: $REPEAT"

# And a fresh connection recomputing the same query must agree too.
echo '{"id": 3, "op": "1nn", "dataset": "smoke", "query": '"$QUERY"'}' \
    | "$CLI" query --port="$PORT" > "$WORK/again.txt" \
    || fail "second connection failed"
[ "$FIRST" = "$(cat "$WORK/again.txt")" ] \
    || fail "answers differ across connections"

# --- Metrics exposition + slowlog -------------------------------------------
echo '{"id": 6, "op": "metrics"}' | "$CLI" query --port="$PORT" \
    > "$WORK/metrics.txt" || fail "metrics request failed"
python3 - "$WORK/metrics.txt" << 'PYEOF' || fail "warp-metrics-v1 invalid"
import json
import re
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    response = json.loads(handle.read())
assert response["ok"], response
assert response["op"] == "metrics", response
assert response["format"] == "warp-metrics-v1", response

lines = response["body"].splitlines()
assert lines[0] == "# warp-metrics-v1", lines[0]

SAMPLE = re.compile(
    r'^(warp_[a-z0-9_]+?)'
    r'(_total|_sum|_count|_bucket\{le="(?:\+Inf|[0-9]+)"\})? (-?[0-9]+)$')
TYPE = re.compile(r"^# TYPE (warp_[a-z0-9_]+) (counter|gauge|histogram)$")

families = {}   # name -> declared type
samples = {}    # full sample name (with label) -> value
for line in lines[1:]:
    if line.startswith("#"):
        match = TYPE.match(line)
        assert match, f"bad comment line: {line!r}"
        families[match.group(1)] = match.group(2)
        continue
    match = SAMPLE.match(line)
    assert match, f"bad sample line: {line!r}"
    samples[line.rsplit(" ", 1)[0]] = int(match.group(3))

assert "warp_serve_requests" in families, sorted(families)
assert "warp_serve_open_connections" in families, sorted(families)
assert "warp_serve_result_cache_hits" in families, sorted(families)
assert families.get("warp_serve_latency_1nn_us") == "histogram", families

for name, kind in families.items():
    if kind == "counter":
        assert samples[name + "_total"] >= 0, name
    elif kind == "gauge":
        assert name in samples, name
    else:  # histogram: cumulative buckets, +Inf == _count.
        count = samples[name + "_count"]
        assert samples[name + '_bucket{le="+Inf"}'] == count, name
        bounds = []
        for sample, value in samples.items():
            match = re.match(re.escape(name) + r'_bucket\{le="([0-9]+)"\}$',
                             sample)
            if match:
                bounds.append((int(match.group(1)), value))
        bounds.sort()
        cumulative = 0
        for _, value in bounds:
            assert value >= cumulative, f"{name}: non-cumulative buckets"
            cumulative = value
        assert cumulative <= count, name
print(f"smoke: warp-metrics-v1 OK "
      f"({len(families)} families, {len(samples)} samples)")
PYEOF

echo '{"id": 7, "op": "slowlog"}' | "$CLI" query --port="$PORT" \
    > "$WORK/slowlog.txt" || fail "slowlog request failed"
grep -q '"ok":true,"op":"slowlog"' "$WORK/slowlog.txt" \
    || fail "slowlog wrong: $(cat "$WORK/slowlog.txt")"
grep -q '"entries":\[' "$WORK/slowlog.txt" || fail "slowlog missing entries"

# --- Snapshot round trip: save, restart from --snapshot-dir, re-ask ---------
mkdir -p "$WORK/snapdir"
echo '{"id": 8, "op": "save_snapshot", "dataset": "smoke", "path": "'"$WORK"'/snapdir/smoke.wsnap"}' \
    | "$CLI" query --port="$PORT" > "$WORK/save.txt" \
    || fail "save_snapshot request failed"
grep -q '"ok":true,"op":"save_snapshot"' "$WORK/save.txt" \
    || fail "save_snapshot wrong: $(cat "$WORK/save.txt")"
[ -s "$WORK/snapdir/smoke.wsnap" ] || fail "snapshot file missing or empty"

# A second server restores from the snapshot directory at a different
# shard count; the same query must come back byte-identical (sharding and
# persistence are execution details, never part of the answer).
"$SERVE" --snapshot-dir="$WORK/snapdir" --shards=3 --threads=2 \
    > "$WORK/server2.log" &
SERVER2_PID=$!
PORT2=""
for _ in $(seq 1 100); do
  PORT2="$(sed -n 's/^ready port=\([0-9]*\)$/\1/p' \
      "$WORK/server2.log" 2> /dev/null)"
  [ -n "$PORT2" ] && break
  kill -0 "$SERVER2_PID" 2> /dev/null \
      || fail "snapshot-restored server exited before listening"
  sleep 0.1
done
[ -n "$PORT2" ] || fail "snapshot-restored server never printed its port"
echo "smoke: snapshot-restored server up on port $PORT2 (pid $SERVER2_PID)"

echo '{"id": 3, "op": "1nn", "dataset": "smoke", "query": '"$QUERY"'}' \
    | "$CLI" query --port="$PORT2" > "$WORK/restored.txt" \
    || fail "query against restored server failed"
[ "$FIRST" = "$(cat "$WORK/restored.txt")" ] \
    || fail "restored server diverged:
  original: $FIRST
  restored: $(cat "$WORK/restored.txt")"
echo '{"id": 9, "op": "info", "dataset": "smoke"}' \
    | "$CLI" query --port="$PORT2" > "$WORK/info2.txt" \
    || fail "info against restored server failed"
grep -q '"shards":3' "$WORK/info2.txt" \
    || fail "restored server shard count wrong: $(cat "$WORK/info2.txt")"

echo '{"id": 98, "op": "shutdown"}' | "$CLI" query --port="$PORT2" \
    > /dev/null || fail "restored-server shutdown failed"
wait "$SERVER2_PID" || fail "restored server exited nonzero"

# --- Clean shutdown ---------------------------------------------------------
echo '{"id": 99, "op": "shutdown"}' | "$CLI" query --port="$PORT" \
    > "$WORK/shutdown.txt" || fail "shutdown request failed"
grep -q '"ok":true' "$WORK/shutdown.txt" || fail "shutdown not acked"

wait "$SERVER_PID"
CODE=$?
[ "$CODE" -eq 0 ] || fail "server exited $CODE after shutdown"

rm -rf "$WORK"
echo "smoke: all serving checks passed"
