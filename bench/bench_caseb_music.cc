// Experiment E3 — paper Section 3.2 (Case B: long N, narrow W).
//
// Align a 4-minute studio song against a live rendition: chroma-energy
// series of length 24,000 (100 Hz), warping window w = 0.83% (the live
// version at most ~2 s ahead/behind). The paper reports
//   cDTW_0.83   45.6 ms
//   FastDTW_10 238.2 ms
//   FastDTW_40 350.9 ms
// each averaged over 1,000 runs. This harness reproduces the three rows
// with both FastDTW implementations (the reference-package port is timed
// with fewer repetitions; it is orders of magnitude slower at this N).
//
// Flags: --length (24000), --reps (10), --ref-reps (1), --warmup (1),
//        --skip-reference (false), --ref-r40 (false), --json=<path>.

#include <cstdio>
#include <string>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/chroma.h"
#include "warp/obs/report.h"

namespace warp {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t length = static_cast<size_t>(flags.GetInt("length", 24000));
  const int reps = static_cast<int>(flags.GetInt("reps", 10));
  const int ref_reps = static_cast<int>(flags.GetInt("ref-reps", 1));
  const int warmup = static_cast<int>(flags.GetInt("warmup", 1));
  const bool skip_reference = flags.GetBool("skip-reference", false);
  const bool ref_r40 = flags.GetBool("ref-r40", false);
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "E3 / Section 3.2",
      "Music alignment (Case B): cDTW_0.83% vs FastDTW_10/40");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("length", static_cast<int64_t>(length));
  report.AddConfig("reps", reps);
  report.AddConfig("ref_reps", ref_reps);
  report.AddConfig("skip_reference", skip_reference);

  PrintBanner("E3 / Section 3.2",
              "Music alignment (Case B): N=24,000 chroma pair, "
              "cDTW_0.83% vs FastDTW_10 vs FastDTW_40");

  gen::ChromaOptions options;
  options.length = length;
  const auto [studio, live] = gen::MakePerformancePair(options);
  std::printf("series length N=%zu, %d repetitions (+%d warmup) per row\n\n",
              length, reps, warmup);

  double checksum = 0.0;
  DtwBuffer buffer;
  const TimingSummary cdtw = report.MeasureCase(
      "cdtw_0.83",
      [&] {
        checksum += CdtwDistanceFraction(studio, live, 0.0083,
                                         CostKind::kSquared, &buffer);
      },
      reps, warmup);
  const TimingSummary fast10 = report.MeasureCase(
      "fastdtw_opt_r10",
      [&] { checksum += FastDtwDistance(studio, live, 10); }, reps, warmup);
  const TimingSummary fast40 = report.MeasureCase(
      "fastdtw_opt_r40",
      [&] { checksum += FastDtwDistance(studio, live, 40); }, reps, warmup);

  TablePrinter table({"algorithm", "mean (ms)", "std (ms)", "min (ms)",
                      "paper (ms)"});
  auto add_row = [&table](const char* name, const TimingSummary& summary,
                          const char* paper) {
    table.AddRow({name, TablePrinter::FormatDouble(summary.mean_millis(), 1),
                  TablePrinter::FormatDouble(summary.stddev * 1e3, 1),
                  TablePrinter::FormatDouble(summary.min_millis(), 1),
                  paper});
  };
  add_row("cDTW_0.83%", cdtw, "45.6");
  add_row("FastDTW_10 (optimized)", fast10, "238.2");
  add_row("FastDTW_40 (optimized)", fast40, "350.9");

  TimingSummary ref10;
  if (!skip_reference) {
    ref10 = report.MeasureCase(
        "fastdtw_ref_r10",
        [&] { checksum += ReferenceFastDtw(studio, live, 10).distance; },
        ref_reps, 0);
    add_row("FastDTW_10 (reference)", ref10, "238.2");
    if (ref_r40) {
      // Opt-in: the reference package's radius-40 expansion does ~160M
      // hash-set inserts at this N and takes minutes.
      const TimingSummary ref40 = report.MeasureCase(
          "fastdtw_ref_r40",
          [&] { checksum += ReferenceFastDtw(studio, live, 40).distance; },
          ref_reps, 0);
      add_row("FastDTW_40 (reference)", ref40, "350.9");
    }
  }
  DoNotOptimize(checksum);
  table.Print();
  std::printf("\nWork counters:\n%s", report.CounterTable().c_str());

  if (!skip_reference) {
    std::printf(
        "\nShape check (vs the reference package, the paper's comparator): "
        "cDTW is %.0fx faster than FastDTW_10 (paper: 5.2x) -> cDTW %s\n",
        ref10.mean / cdtw.mean,
        cdtw.mean < ref10.mean ? "wins" : "LOSES (unexpected)");
  }
  std::printf(
      "Against our aggressively optimized FastDTW port: %.1fx (r=10) and "
      "%.1fx (r=40) — even a best-case FastDTW only ties vanilla cDTW here, "
      "while remaining approximate and unable to use lower bounds.\n",
      fast10.mean / cdtw.mean, fast40.mean / cdtw.mean);

  // Alignment sanity: the window really does absorb the tempo warp.
  const double at_window = CdtwDistanceFraction(studio, live, 0.0083);
  const double euclidean = EuclideanDistance(studio, live);
  std::printf("alignment sanity: cDTW_0.83%%=%.1f vs Euclidean=%.1f "
              "(warping absorbed: %s)\n",
              at_window, euclidean, at_window < euclidean ? "yes" : "NO");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
