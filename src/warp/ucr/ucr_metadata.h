// Bundled metadata snapshot of the 128-dataset UCR Time Series
// Classification Archive (2018 edition).
//
// Fig. 2 of the paper histograms two columns of the archive's published
// summary table: the optimal warping window w (found by brute-force LOOCV)
// and the series length. Those histograms need only the metadata, not the
// raw series, so the table is bundled here. Values are transcribed from
// the public archive summary; error rates and some best-w values are
// approximate (the archive is occasionally revised), which does not affect
// the distributional claims the figure makes. Datasets with variable
// length (the 2018 gesture additions) carry their maximum length, as in
// the archive's own table.

#ifndef WARP_UCR_UCR_METADATA_H_
#define WARP_UCR_UCR_METADATA_H_

#include <array>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace warp {
namespace ucr {

struct DatasetInfo {
  std::string_view name;
  int train_size;
  int test_size;
  int length;           // Series length (max length for variable sets).
  int num_classes;
  int best_window_percent;  // Optimal w for 1-NN cDTW, percent of length.
  double ed_error;          // 1-NN Euclidean test error.
  double cdtw_error;        // 1-NN cDTW (best w) test error.
};

// The full archive table, sorted by name. Always 128 entries.
std::span<const DatasetInfo> AllDatasets();

// Lookup by exact name; returns nullptr if absent.
const DatasetInfo* FindDataset(std::string_view name);

// Column extractors for the Fig. 2 histograms.
std::vector<double> BestWindowPercents();
std::vector<double> SeriesLengths();

// The paper's Table-1 quadrant for a dataset, using the paper's own
// (avowedly subjective) boundaries: N transitions around 1,000 and W
// around 20%.
enum class WarpingCase {
  kA,  // Short N, narrow W — "at least 99% of all uses".
  kB,  // Long N, narrow W.
  kC,  // Short N, wide W.
  kD,  // Long N, wide W — "no obvious applications".
};

WarpingCase CaseOf(const DatasetInfo& info);
const char* CaseName(WarpingCase c);

// Counts of archive datasets per quadrant.
std::array<size_t, 4> CaseCensus();

}  // namespace ucr
}  // namespace warp

#endif  // WARP_UCR_UCR_METADATA_H_
