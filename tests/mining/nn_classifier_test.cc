// Unit tests for 1-NN classification: brute force vs accelerated engines.

#include "warp/mining/nn_classifier.h"

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/gesture.h"

namespace warp {
namespace {

gen::GestureOptions SmallOptions() {
  gen::GestureOptions options;
  options.length = 96;
  options.num_classes = 3;
  options.seed = 17;
  return options;
}

SeriesMeasure CdtwMeasure(size_t band) {
  return [band](std::span<const double> a, std::span<const double> b) {
    return CdtwDistance(a, b, band);
  };
}

TEST(Classify1NnTest, FindsExactNearestNeighbor) {
  Dataset train;
  train.Add(TimeSeries({0.0, 0.0, 0.0}, 0));
  train.Add(TimeSeries({5.0, 5.0, 5.0}, 1));
  const std::vector<double> query = {4.0, 4.0, 4.0};
  const Prediction p = Classify1Nn(train, query, CdtwMeasure(1));
  EXPECT_EQ(p.label, 1);
  EXPECT_EQ(p.nn_index, 1u);
  EXPECT_DOUBLE_EQ(p.distance, 3.0);
}

TEST(Evaluate1NnTest, PerfectOnSeparableData) {
  const Dataset data = gen::MakeGestureDataset(8, SmallOptions());
  const auto [train, test] = data.StratifiedSplit(0.5);
  const ClassificationStats stats =
      Evaluate1Nn(train, test, CdtwMeasure(10));
  EXPECT_GT(stats.accuracy, 0.9);
  EXPECT_EQ(stats.total, test.size());
  EXPECT_DOUBLE_EQ(stats.accuracy + stats.error_rate, 1.0);
}

TEST(AcceleratedNnTest, AgreesWithBruteForceExactly) {
  // The load-bearing property: pruning must never change the answer.
  const Dataset data = gen::MakeGestureDataset(6, SmallOptions());
  const auto [train, test] = data.StratifiedSplit(0.5);
  for (size_t band : {0u, 5u, 20u}) {
    const AcceleratedNnClassifier fast(train, band);
    for (const TimeSeries& query : test.series()) {
      const Prediction accelerated = fast.Classify(query.view());
      const Prediction brute =
          Classify1Nn(train, query.view(), CdtwMeasure(band));
      EXPECT_EQ(accelerated.label, brute.label) << "band=" << band;
      EXPECT_NEAR(accelerated.distance, brute.distance, 1e-9);
    }
  }
}

TEST(AcceleratedNnTest, CascadeActuallyPrunes) {
  const Dataset data = gen::MakeGestureDataset(10, SmallOptions());
  const auto [train, test] = data.StratifiedSplit(0.5);
  const AcceleratedNnClassifier fast(train, 5);
  ClassificationStats stats;
  for (const TimeSeries& query : test.series()) {
    fast.Classify(query.view(), &stats);
  }
  const uint64_t pruned = stats.pruned_by_kim + stats.pruned_by_keogh +
                          stats.abandoned_dtw;
  EXPECT_GT(pruned, 0u);
  EXPECT_EQ(stats.candidates,
            pruned + stats.full_dtw);
}

TEST(AcceleratedNnTest, EvaluateMatchesBruteForceAccuracy) {
  const Dataset data = gen::MakeGestureDataset(6, SmallOptions());
  const auto [train, test] = data.StratifiedSplit(0.5);
  const AcceleratedNnClassifier fast(train, 8);
  const ClassificationStats accelerated = fast.Evaluate(test);
  const ClassificationStats brute = Evaluate1Nn(train, test, CdtwMeasure(8));
  EXPECT_EQ(accelerated.correct, brute.correct);
}

TEST(MultiNnTest, ClassifiesMultichannelGestures) {
  gen::GestureOptions options = SmallOptions();
  const auto data = gen::MakeMultiGestureDataset(6, 3, options);
  // Split by interleaving.
  std::vector<MultiSeries> train;
  std::vector<MultiSeries> test;
  for (size_t i = 0; i < data.size(); ++i) {
    (i % 2 == 0 ? train : test).push_back(data[i]);
  }
  const MultiMeasure exact = [](const MultiSeries& a, const MultiSeries& b) {
    return MultiCdtwDistance(a, b, 10);
  };
  const ClassificationStats stats = Evaluate1NnMulti(train, test, exact);
  EXPECT_GT(stats.accuracy, 0.8);
}

TEST(MultiNnTest, FastDtwMeasurePlugsIn) {
  gen::GestureOptions options = SmallOptions();
  options.num_classes = 2;
  const auto data = gen::MakeMultiGestureDataset(4, 2, options);
  std::vector<MultiSeries> train(data.begin(), data.begin() + 4);
  std::vector<MultiSeries> test(data.begin() + 4, data.end());
  const MultiMeasure fastdtw = [](const MultiSeries& a,
                                  const MultiSeries& b) {
    return MultiFastDtw(a, b, 5).distance;
  };
  const ClassificationStats stats = Evaluate1NnMulti(train, test, fastdtw);
  EXPECT_EQ(stats.total, test.size());
}

}  // namespace
}  // namespace warp
