// Weighted Dynamic Time Warping (Jeong, Jeong & Omitaomu, 2011).
//
// A soft alternative to the hard Sakoe–Chiba cutoff: instead of forbidding
// cells far from the diagonal, WDTW multiplies each cell's local cost by a
// logistic weight of the phase difference |i - j|, so distant alignments
// are increasingly discouraged but never impossible. Included as an
// extension because it drops straight into the banded engine via a
// weighted cell cost, and because it makes the same point the paper makes
// about w: a little warping is good, unbounded warping is pathological.

#ifndef WARP_CORE_WDTW_H_
#define WARP_CORE_WDTW_H_

#include <span>
#include <vector>

#include "warp/core/dtw.h"

namespace warp {

// The modified-logistic weight vector: weight[d] for phase difference d,
//   weight[d] = w_max / (1 + exp(-g * (d - n/2))),
// where g controls the penalty's steepness (typical 0.01–0.6) and n is
// the series length.
std::vector<double> MakeWdtwWeights(size_t n, double g = 0.05,
                                    double w_max = 1.0);

// Weighted DTW distance, optionally restricted to a Sakoe–Chiba band
// (band >= length is unconstrained, the usual WDTW formulation).
// Lengths must be equal (the phase difference needs a common index base).
double WdtwDistance(std::span<const double> x, std::span<const double> y,
                    double g, size_t band,
                    CostKind cost = CostKind::kSquared,
                    DtwWorkspace* workspace = nullptr);

}  // namespace warp

#endif  // WARP_CORE_WDTW_H_
