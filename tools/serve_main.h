// Shared implementation of the serve tool entry point.
//
// `warp_serve` and `warp_cli serve` are the same server with two front
// doors; both parse the same flags and call ServeToolMain() from here so
// the behavior cannot drift. Header-only to keep tools/ free of its own
// library target.
//
//   --port=N        listen port (default 0 = kernel-assigned; the bound
//                   port is printed on the "listening" line)
//   --threads=N     query-engine workers (default 1; 0 = all cores)
//   --shards=N      store shards per dataset (default 1; must be a
//                   positive integer — anything else exits 2)
//   --cache=N       result-cache capacity in entries (default 256; 0 off)
//   --bands=F,F     window fractions indexed per dataset (default .05,.1)
//   --data=NAME=PATH         load a UCR file (repeatable)
//   --gen=NAME=COUNT,LEN[,SEED]  synthesize a random-walk dataset
//                   (repeatable; default seed 42)
//   --snapshot-dir=PATH  auto-register every *.wsnap snapshot in PATH at
//                   startup (sorted filename order; docs/SERVING.md)
//   --max-queue-depth=N  batcher admission gate: pending submissions
//                   beyond N fast-fail with error "overloaded" (0 = off)
//   --worker --shard-id=K --shard-count=N
//                   cluster worker mode: serve only shard K of N; every
//                   query must arrive stamped "shard":K (docs/SERVING.md,
//                   "Multi-process cluster")
//   --simd=MODE     SIMD kernel dispatch: on | off | auto (default auto;
//                   docs/SIMD.md)

#ifndef WARP_TOOLS_SERVE_MAIN_H_
#define WARP_TOOLS_SERVE_MAIN_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "warp/gen/random_walk.h"
#include "warp/serve/server.h"
#include "warp/simd/dispatch.h"

namespace warp {
namespace tools {

using ToolFlags = std::vector<std::pair<std::string, std::string>>;

// Parses --name / --name=value arguments from argv[start..); anything not
// starting with "--" is ignored (the caller owns positionals).
inline ToolFlags ParseToolFlags(int argc, char** argv, int start) {
  ToolFlags flags;
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.emplace_back(arg, "true");
    } else {
      flags.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
  return flags;
}

inline std::vector<double> ParseFractionList(const std::string& text) {
  std::vector<double> fractions;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string piece = text.substr(start, comma - start);
    if (!piece.empty()) fractions.push_back(std::strtod(piece.c_str(), nullptr));
    start = comma + 1;
  }
  return fractions;
}

// Builds, preloads, and runs a server from parsed tool flags. Returns a
// process exit code.
inline int ServeToolMain(const ToolFlags& flags) {
  serve::ServerOptions options;
  std::vector<std::pair<std::string, std::string>> data_specs;
  std::vector<std::string> gen_specs;
  std::vector<std::string> snapshot_dirs;
  bool worker_mode = false;
  long worker_shard_id = 0;
  for (const auto& [key, value] : flags) {
    if (key == "port") {
      options.port = static_cast<uint16_t>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "threads") {
      const long n = std::strtol(value.c_str(), nullptr, 10);
      options.threads = n < 0 ? 0 : static_cast<size_t>(n);
    } else if (key == "shards") {
      // Shard count shapes the store's partition; a typo silently
      // coerced to 1 would be a misconfiguration the operator never
      // sees, so validation failures exit 2 like any invalid flag.
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "warp_serve: invalid --shards=%s (expected a positive "
                     "integer)\n",
                     value.c_str());
        return 2;
      }
      options.shards = static_cast<size_t>(n);
    } else if (key == "cache") {
      const long n = std::strtol(value.c_str(), nullptr, 10);
      options.cache_capacity = n < 0 ? 0 : static_cast<size_t>(n);
    } else if (key == "max-queue-depth") {
      const long n = std::strtol(value.c_str(), nullptr, 10);
      options.max_queue_depth = n < 0 ? 0 : static_cast<size_t>(n);
    } else if (key == "worker") {
      worker_mode = true;
    } else if (key == "shard-id") {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || n < 0) {
        std::fprintf(stderr,
                     "warp_serve: invalid --shard-id=%s (expected a "
                     "non-negative integer)\n",
                     value.c_str());
        return 2;
      }
      worker_shard_id = n;
    } else if (key == "shard-count") {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "warp_serve: invalid --shard-count=%s (expected a "
                     "positive integer)\n",
                     value.c_str());
        return 2;
      }
      options.shards = static_cast<size_t>(n);
    } else if (key == "bands") {
      options.band_fractions = ParseFractionList(value);
    } else if (key == "data") {
      const size_t eq = value.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "warp_serve: --data expects NAME=PATH\n");
        return 1;
      }
      data_specs.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (key == "gen") {
      gen_specs.push_back(value);
    } else if (key == "snapshot-dir") {
      snapshot_dirs.push_back(value);
    } else if (key == "profile") {
      // Consumed by warp_cli's Main (snapshot + print around this call)
      // so `warp_cli serve --profile` profiles an in-process server run;
      // tolerated here so the flag doesn't fail the serve front doors.
    } else if (key == "simd") {
      simd::SimdMode mode;
      if (!simd::ParseSimdMode(value, &mode)) {
        std::fprintf(stderr,
                     "warp_serve: invalid --simd=%s (expected on, off, or "
                     "auto)\n",
                     value.c_str());
        return 2;
      }
      simd::SetSimdMode(mode);
    } else {
      std::fprintf(stderr, "warp_serve: unknown flag --%s\n", key.c_str());
      return 1;
    }
  }

  if (worker_mode) {
    // Worker mode binds shard-id to the partition: the id must name one
    // of the --shard-count shards or every stamped query would be
    // refused as mis-routed.
    if (worker_shard_id >= static_cast<long>(options.shards)) {
      std::fprintf(stderr,
                   "warp_serve: --shard-id=%ld out of range for "
                   "--shard-count=%zu\n",
                   worker_shard_id, options.shards);
      return 2;
    }
    options.worker_shard = worker_shard_id;
  }

  serve::Server server(std::move(options));
  for (const std::string& dir : snapshot_dirs) {
    std::string error;
    if (!server.LoadSnapshotDir(dir, &error)) {
      // Refuse-don't-guess: a corrupt or incompatible snapshot stops
      // startup rather than silently serving a partial dataset list.
      std::fprintf(stderr, "warp_serve: --snapshot-dir=%s: %s\n", dir.c_str(),
                   error.c_str());
      return 1;
    }
  }
  for (const auto& [name, path] : data_specs) {
    std::string error;
    if (!server.LoadDataset(name, path, {}, &error)) {
      std::fprintf(stderr, "warp_serve: %s: %s\n", name.c_str(),
                   error.c_str());
      return 1;
    }
  }
  for (const std::string& spec : gen_specs) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "warp_serve: --gen expects NAME=COUNT,LEN[,SEED]\n");
      return 1;
    }
    const std::string name = spec.substr(0, eq);
    char* cursor = nullptr;
    const std::string numbers = spec.substr(eq + 1);
    const long count = std::strtol(numbers.c_str(), &cursor, 10);
    long length = 0;
    long seed = 42;
    if (cursor != nullptr && *cursor == ',') {
      length = std::strtol(cursor + 1, &cursor, 10);
      if (cursor != nullptr && *cursor == ',') {
        seed = std::strtol(cursor + 1, nullptr, 10);
      }
    }
    if (count <= 0 || length <= 0) {
      std::fprintf(stderr, "warp_serve: bad --gen spec '%s'\n", spec.c_str());
      return 1;
    }
    server.RegisterDataset(
        name, gen::RandomWalkDataset(static_cast<size_t>(count),
                                     static_cast<size_t>(length),
                                     static_cast<uint64_t>(seed)));
  }
  return serve::RunServer(&server);
}

}  // namespace tools
}  // namespace warp

#endif  // WARP_TOOLS_SERVE_MAIN_H_
