// Serving throughput: per-query round-trips vs pipelined batches vs a
// warm result cache.
//
// Four cases over the same synthetic random-walk dataset and query set
// (in-process, no sockets — the wire adds parsing, not compute):
//
//   serial      one orchestrator calls QueryEngine::Run per query; the
//               pure library baseline, no serving machinery at all;
//   unbatched   C client threads, ONE query per Batcher::Execute — every
//               query pays a full submit/dispatch/wake round-trip;
//   batched     the same C clients submit their whole query slice in one
//               Execute, the way the server drains a connection's
//               pipelined lines: the group commits as one engine batch
//               and fans out as a single flattened (request, chunk) work
//               list;
//   cached      `batched` again with the ResultCache warm — the upper
//               bound batching chases;
//   shardedN    `batched` against an N-shard store (scatter/gather scan
//               plans) — bitwise-identical answers, different latency.
//
// A final pair of timings compares cold start (parse UCR text, rebuild
// the LB index) against restoring the same dataset from a warp-snap-v1
// snapshot; `restore_speedup` lands in the JSON config block.
//
// Per-request latency is sampled around each submission and summarized as
// median / p95 / p99 (the serving percentiles the subsystem exists to
// control); throughput comes from the aggregate wall clock. The JSON
// report (warp-bench-v1) carries the serve_* work counters per case.
//
// Determinism note: answers are bitwise-identical across all four cases
// and any --threads; only the latency distribution differs.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/bench_flags.h"
#include "warp/cluster/router.h"
#include "warp/cluster/supervisor.h"
#include "warp/common/stopwatch.h"
#include "warp/gen/random_walk.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"
#include "warp/serve/batcher.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/net.h"
#include "warp/serve/protocol.h"
#include "warp/serve/query_engine.h"
#include "warp/serve/request.h"
#include "warp/serve/result_cache.h"
#include "warp/serve/snapshot.h"
#include "warp/ts/io.h"

namespace warp {
namespace {

struct CaseResult {
  TimingSummary latency;
  double wall_seconds = 0.0;
};

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  // Default workload: many cheap queries — the regime a serving layer is
  // for, and the one where per-request round-trip overhead (what batching
  // removes) is visible next to kernel compute.
  const size_t series = static_cast<size_t>(flags.GetInt("series", 100));
  const size_t length = static_cast<size_t>(flags.GetInt("length", 64));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 1024));
  const size_t clients = static_cast<size_t>(flags.GetInt("clients", 8));
  // Serving is the one harness whose natural configuration is parallel:
  // default to all cores (the paper-faithful --threads=1 default elsewhere
  // would measure the batcher against a serial engine, where coalescing
  // has nothing to win).
  const int64_t threads_flag = flags.GetInt("threads", 0);
  const size_t threads = threads_flag <= 0 ? DefaultThreadCount()
                                           : static_cast<size_t>(threads_flag);
  const double window = flags.GetDouble("window", 0.05);
  const size_t cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 4096));
  // Each case runs `repeats` times and reports its fastest run: the
  // shared-machine noise this harness sees is strictly additive, so the
  // minimum is the least-contaminated estimate of every case.
  const size_t repeats =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("repeats", 3)));
  const std::string json_path = bench::JsonFlag(flags);
  bench::SimdFlag(flags);
  flags.Finalize();

  bench::PrintBanner("serve: throughput",
                     "per-query round-trips vs pipelined batches vs cache");
  std::printf("series=%zu length=%zu queries=%zu clients=%zu threads=%zu\n\n",
              series, length, queries, clients, threads);

  const Dataset data = gen::RandomWalkDataset(series, length, 42);
  const size_t band =
      static_cast<size_t>(window * static_cast<double>(length) + 0.5);
  serve::DatasetStore store;
  store.Register("bench", data, {band});

  const Dataset query_set = gen::RandomWalkDataset(queries, length, 4242);
  std::vector<serve::ServeRequest> requests(queries);
  for (size_t i = 0; i < queries; ++i) {
    requests[i].id = static_cast<int64_t>(i);
    requests[i].op = serve::QueryOp::k1Nn;
    requests[i].dataset = "bench";
    requests[i].params.window_fraction = window;
    requests[i].query = query_set[i].values();
  }

  obs::BenchReport report("serve: throughput",
                          "per-request latency and aggregate throughput of "
                          "the query-serving subsystem");
  report.AddConfig("series", static_cast<uint64_t>(series));
  report.AddConfig("length", static_cast<uint64_t>(length));
  report.AddConfig("queries", static_cast<uint64_t>(queries));
  report.AddConfig("clients", static_cast<uint64_t>(clients));
  report.AddConfig("threads", static_cast<uint64_t>(threads));
  report.AddConfig("window", window);
  report.AddConfig("cache_capacity", static_cast<uint64_t>(cache_capacity));

  std::vector<std::string> checks;  // Per-case digest of query 0's answer.
  const auto digest = [](const serve::ServeResponse& response) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%zu:%a",
                  response.neighbors.empty() ? size_t{0}
                                             : response.neighbors[0].index,
                  response.neighbors.empty() ? 0.0
                                             : response.neighbors[0].distance);
    return std::string(buffer);
  };

  serve::ResultCache cache(cache_capacity);
  serve::QueryEngine engine(&store, &cache, threads);
  serve::Batcher batcher(&engine);

  // Untimed warmup: pool spin-up, workspace growth, page faults. Cleared
  // from the cache afterward so every uncached case still computes.
  {
    std::vector<serve::ServeRequest> warm(
        requests.begin(),
        requests.begin() +
            static_cast<ptrdiff_t>(std::min<size_t>(8, queries)));
    std::vector<serve::ServeResponse> responses;
    batcher.Execute(warm, &responses);
    cache.Clear();
  }

  // --- serial: the library baseline. ---
  CaseResult serial;
  {
    obs::MetricsSnapshot before = obs::SnapshotCounters();
    obs::HistogramSnapshot histograms_before = obs::SnapshotHistograms();
    for (size_t rep = 0; rep < repeats; ++rep) {
      std::vector<double> samples;
      samples.reserve(queries);
      Stopwatch wall;
      for (const serve::ServeRequest& request : requests) {
        Stopwatch watch;
        const serve::ServeResponse response = engine.Run(request);
        samples.push_back(watch.ElapsedSeconds());
        if (checks.empty()) checks.push_back(digest(response));
      }
      const double wall_seconds = wall.ElapsedSeconds();
      if (rep == 0 || wall_seconds < serial.wall_seconds) {
        serial.wall_seconds = wall_seconds;
        serial.latency = SummarizeSamples(samples);
      }
      cache.Clear();
    }
    report.AddCase("serial", serial.latency, obs::CountersSince(before),
                   obs::HistogramsSince(histograms_before));
  }

  // Concurrent clients submitting through a batcher. Client c owns
  // queries c, c+clients, ... With per_submit == 1 every query is its own
  // round-trip; with per_submit == 0 each client pipelines its whole
  // slice into one Execute (what the server does with buffered lines).
  const auto run_clients_via = [&](serve::Batcher& via, size_t per_submit,
                                   std::string* first_digest) {
    CaseResult result;
    std::vector<std::vector<double>> samples(clients);
    std::vector<std::string> digests(clients);
    Stopwatch wall;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c, per_submit] {
        std::vector<serve::ServeRequest> slice;
        for (size_t i = c; i < queries; i += clients) {
          slice.push_back(requests[i]);
        }
        const size_t step = per_submit == 0 ? slice.size() : per_submit;
        for (size_t at = 0; at < slice.size(); at += step) {
          const std::vector<serve::ServeRequest> group(
              slice.begin() + static_cast<ptrdiff_t>(at),
              slice.begin() + static_cast<ptrdiff_t>(
                                  std::min(at + step, slice.size())));
          std::vector<serve::ServeResponse> responses;
          Stopwatch watch;
          via.Execute(group, &responses);
          const double elapsed = watch.ElapsedSeconds();
          // Every query in the group was submitted together and finished
          // together: each experienced the group's latency.
          for (size_t g = 0; g < group.size(); ++g) {
            samples[c].push_back(elapsed);
            if (group[g].id == 0) digests[c] = digest(responses[g]);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    result.wall_seconds = wall.ElapsedSeconds();
    std::vector<double> merged;
    for (const std::vector<double>& s : samples) {
      merged.insert(merged.end(), s.begin(), s.end());
    }
    result.latency = SummarizeSamples(merged);
    for (const std::string& d : digests) {
      if (!d.empty()) *first_digest = d;
    }
    return result;
  };
  const auto run_clients = [&](size_t per_submit, std::string* first_digest) {
    return run_clients_via(batcher, per_submit, first_digest);
  };

  // Repeats a client case, keeping the fastest run. `warm_cache` keeps
  // the cache populated across runs (the cached case); otherwise each run
  // recomputes from scratch.
  const auto measure_clients = [&](size_t per_submit, bool warm_cache,
                                   const std::string& name) {
    CaseResult best;
    std::string case_digest;
    obs::MetricsSnapshot before = obs::SnapshotCounters();
    obs::HistogramSnapshot histograms_before = obs::SnapshotHistograms();
    for (size_t rep = 0; rep < repeats; ++rep) {
      const CaseResult result = run_clients(per_submit, &case_digest);
      if (rep == 0 || result.wall_seconds < best.wall_seconds) best = result;
      if (!warm_cache) cache.Clear();
    }
    report.AddCase(name, best.latency, obs::CountersSince(before),
                   obs::HistogramsSince(histograms_before));
    checks.push_back(case_digest);
    return best;
  };

  const CaseResult unbatched = measure_clients(1, false, "unbatched");
  CaseResult batched;
  CaseResult cached;
  {
    // Leave the final batched run's answers in the cache, then re-ask the
    // same pipelined submissions: every answer is a cache hit.
    std::string case_digest;
    obs::MetricsSnapshot before = obs::SnapshotCounters();
    obs::HistogramSnapshot histograms_before = obs::SnapshotHistograms();
    for (size_t rep = 0; rep < repeats; ++rep) {
      const CaseResult result = run_clients(0, &case_digest);
      if (rep == 0 || result.wall_seconds < batched.wall_seconds) {
        batched = result;
      }
      if (rep + 1 < repeats) cache.Clear();
    }
    report.AddCase("batched", batched.latency, obs::CountersSince(before),
                   obs::HistogramsSince(histograms_before));
    checks.push_back(case_digest);

    before = obs::SnapshotCounters();
    histograms_before = obs::SnapshotHistograms();
    for (size_t rep = 0; rep < repeats; ++rep) {
      const CaseResult result = run_clients(0, &case_digest);
      if (rep == 0 || result.wall_seconds < cached.wall_seconds) {
        cached = result;
      }
    }
    report.AddCase("cached", cached.latency, obs::CountersSince(before),
                   obs::HistogramsSince(histograms_before));
    checks.push_back(case_digest);
  }

  // --- sharded: the batched case against scatter/gather stores. The
  // answers must not move by a bit (the digest check below is the
  // bench-level half of tests/serve/shard_golden_test.cc); only the
  // latency profile may.
  std::vector<std::pair<size_t, CaseResult>> sharded;
  for (const size_t shard_count : {size_t{2}, size_t{4}}) {
    serve::DatasetStore shard_store(shard_count);
    shard_store.Register("bench", data, {band});
    serve::QueryEngine shard_engine(&shard_store, nullptr, threads);
    serve::Batcher shard_batcher(&shard_engine);
    const std::string name = "sharded" + std::to_string(shard_count);
    CaseResult best;
    std::string case_digest;
    obs::MetricsSnapshot before = obs::SnapshotCounters();
    obs::HistogramSnapshot histograms_before = obs::SnapshotHistograms();
    for (size_t rep = 0; rep < repeats; ++rep) {
      const CaseResult result =
          run_clients_via(shard_batcher, 0, &case_digest);
      if (rep == 0 || result.wall_seconds < best.wall_seconds) best = result;
    }
    report.AddCase(name, best.latency, obs::CountersSince(before),
                   obs::HistogramsSince(histograms_before));
    checks.push_back(case_digest);
    sharded.emplace_back(shard_count, best);
  }

  // --- routerN: the batched clients again, but over TCP against the
  // multi-process cluster (router + N warp_serve shard workers spawned
  // from a snapshot). Pays wire parsing and scatter/gather on top of
  // shardedN's scan plans; the digest check below cross-checks that the
  // cluster's answer still has not moved by a bit.
  std::vector<std::pair<size_t, CaseResult>> routed;
  {
    const std::string snap_dir = "bench_serve_router_snaps";
    std::error_code fs_error;
    std::filesystem::create_directories(snap_dir, fs_error);
    std::string error;
    if (fs_error || !serve::SaveSnapshot(*store.Get("bench"),
                                         snap_dir + "/bench.wsnap", &error)) {
      std::fprintf(stderr, "FATAL: router snapshot: %s\n", error.c_str());
      return 1;
    }
    std::vector<std::string> lines(queries);
    for (size_t i = 0; i < queries; ++i) {
      lines[i] = serve::FormatRequest(requests[i]);
    }
    for (const size_t shard_count : {size_t{2}, size_t{4}}) {
      cluster::SupervisorOptions sup;
      sup.shards = shard_count;
      sup.threads = threads;
      sup.worker_binary = WARP_SERVE_PATH;
      sup.snapshot_dir = snap_dir;
      cluster::Supervisor supervisor(sup);
      if (!supervisor.Start(&error)) {
        std::fprintf(stderr, "FATAL: supervisor: %s\n", error.c_str());
        return 1;
      }
      cluster::Router router(cluster::RouterOptions{}, &supervisor);
      if (!router.Start(&error)) {
        std::fprintf(stderr, "FATAL: router: %s\n", error.c_str());
        return 1;
      }
      std::thread router_thread([&router] { router.Serve(); });

      const std::string name = "router" + std::to_string(shard_count);
      CaseResult best;
      std::string case_digest;
      bool have_best = false;
      obs::MetricsSnapshot before = obs::SnapshotCounters();
      obs::HistogramSnapshot histograms_before = obs::SnapshotHistograms();
      for (size_t rep = 0; rep < repeats; ++rep) {
        std::vector<std::vector<double>> samples(clients);
        std::vector<std::string> digests(clients);
        std::atomic<bool> broken{false};
        Stopwatch wall;
        std::vector<std::thread> senders;
        senders.reserve(clients);
        for (size_t c = 0; c < clients; ++c) {
          senders.emplace_back([&, c] {
            std::string conn_error;
            serve::TcpConn conn =
                serve::ConnectLoopback(router.port(), &conn_error);
            if (!conn.valid()) {
              broken = true;
              return;
            }
            // Client c pipelines its whole slice in one write, like the
            // `batched` case's single Execute.
            std::string payload;
            std::vector<size_t> slice;
            for (size_t i = c; i < queries; i += clients) {
              payload += lines[i];
              payload += '\n';
              slice.push_back(i);
            }
            Stopwatch watch;
            if (!conn.WriteAll(payload)) {
              broken = true;
              return;
            }
            for (size_t at = 0; at < slice.size(); ++at) {
              std::string line;
              if (!conn.ReadLine(&line)) {
                broken = true;
                return;
              }
              if (slice[at] == 0) {
                serve::ServeResponse parsed;
                std::string parse_error;
                if (!serve::ParseResponseLine(line, &parsed, &parse_error) ||
                    !parsed.ok) {
                  broken = true;
                  return;
                }
                digests[c] = digest(parsed);
              }
            }
            samples[c].assign(slice.size(), watch.ElapsedSeconds());
          });
        }
        for (std::thread& sender : senders) sender.join();
        if (broken) {
          std::fprintf(stderr, "FATAL: %s round trip failed\n", name.c_str());
          return 1;
        }
        CaseResult result;
        result.wall_seconds = wall.ElapsedSeconds();
        std::vector<double> merged;
        for (const std::vector<double>& s : samples) {
          merged.insert(merged.end(), s.begin(), s.end());
        }
        result.latency = SummarizeSamples(merged);
        for (const std::string& d : digests) {
          if (!d.empty()) case_digest = d;
        }
        if (!have_best || result.wall_seconds < best.wall_seconds) {
          best = result;
          have_best = true;
        }
      }
      report.AddCase(name, best.latency, obs::CountersSince(before),
                     obs::HistogramsSince(histograms_before));
      checks.push_back(case_digest);
      routed.emplace_back(shard_count, best);

      router.RequestShutdown();
      router_thread.join();
      supervisor.Stop();
    }
    std::filesystem::remove_all(snap_dir, fs_error);
  }

  // --- cold start vs snapshot restore: time-to-first-query. Cold start
  // re-parses the UCR text and rebuilds the whole LB index (z-norm +
  // envelopes); restore reads the warp-snap-v1 file and only re-partitions
  // bits that were already computed.
  double cold_start_seconds = 0.0;
  double restore_seconds = 0.0;
  {
    const std::string ucr_path = "bench_serve_cold.tsv";
    const std::string snap_path = "bench_serve_restore.wsnap";
    std::string error;
    if (!SaveUcrFile(ucr_path, data, &error) ||
        !serve::SaveSnapshot(*store.Get("bench"), snap_path, &error)) {
      std::fprintf(stderr, "FATAL: %s\n", error.c_str());
      return 1;
    }
    for (size_t rep = 0; rep < repeats; ++rep) {
      Stopwatch watch;
      Dataset parsed;
      serve::DatasetStore cold(1);
      if (!LoadUcrFile(ucr_path, &parsed, &error)) {
        std::fprintf(stderr, "FATAL: %s\n", error.c_str());
        return 1;
      }
      cold.Register("bench", parsed, {band});
      const double elapsed = watch.ElapsedSeconds();
      if (rep == 0 || elapsed < cold_start_seconds) {
        cold_start_seconds = elapsed;
      }
    }
    for (size_t rep = 0; rep < repeats; ++rep) {
      Stopwatch watch;
      serve::DatasetIndex index;
      serve::DatasetStore restored(1);
      if (!serve::LoadSnapshot(snap_path, &index, nullptr, &error)) {
        std::fprintf(stderr, "FATAL: %s\n", error.c_str());
        return 1;
      }
      restored.RegisterIndex("bench", std::move(index));
      const double elapsed = watch.ElapsedSeconds();
      if (rep == 0 || elapsed < restore_seconds) restore_seconds = elapsed;
    }
    // The restored store must answer query 0 with the same bits.
    serve::DatasetIndex index;
    serve::DatasetStore restored(1);
    if (!serve::LoadSnapshot(snap_path, &index, nullptr, &error)) {
      std::fprintf(stderr, "FATAL: %s\n", error.c_str());
      return 1;
    }
    restored.RegisterIndex("bench", std::move(index));
    serve::QueryEngine restored_engine(&restored, nullptr, 1);
    checks.push_back(digest(restored_engine.Run(requests[0])));
    std::remove(ucr_path.c_str());
    std::remove(snap_path.c_str());
  }

  for (size_t i = 1; i < checks.size(); ++i) {
    if (checks[i] != checks[0]) {
      std::fprintf(stderr, "FATAL: case %zu answer diverged: %s vs %s\n", i,
                   checks[i].c_str(), checks[0].c_str());
      return 1;
    }
  }

  const auto qps = [&](const CaseResult& r) {
    return static_cast<double>(queries) / r.wall_seconds;
  };
  report.AddConfig("serial_qps", qps(serial));
  report.AddConfig("unbatched_qps", qps(unbatched));
  report.AddConfig("batched_qps", qps(batched));
  report.AddConfig("cached_qps", qps(cached));
  report.AddConfig("batches_dispatched", batcher.batches_dispatched());
  for (const auto& [shard_count, result] : sharded) {
    report.AddConfig("sharded" + std::to_string(shard_count) + "_qps",
                     qps(result));
  }
  for (const auto& [shard_count, result] : routed) {
    report.AddConfig("router" + std::to_string(shard_count) + "_qps",
                     qps(result));
  }
  report.AddConfig("cold_start_ms", cold_start_seconds * 1e3);
  report.AddConfig("snapshot_restore_ms", restore_seconds * 1e3);
  report.AddConfig("restore_speedup", cold_start_seconds / restore_seconds);

  std::fputs(report.TimingTable().c_str(), stdout);
  std::fputs(report.CounterTable().c_str(), stdout);
  // Per-op latency and work distributions (serve_latency_* / stage / cells
  // histograms), recorded inside the serve path while each case ran.
  const std::string histogram_table = report.HistogramTable();
  if (!histogram_table.empty()) {
    std::printf("\nhistograms (microseconds unless noted):\n");
    std::fputs(histogram_table.c_str(), stdout);
  }
  std::printf("\nthroughput (queries/s): serial %.1f | unbatched %.1f | "
              "batched %.1f (%.2fx unbatched) | cached %.1f\n"
              "batches dispatched: %llu\n",
              qps(serial), qps(unbatched), qps(batched),
              qps(batched) / qps(unbatched), qps(cached),
              static_cast<unsigned long long>(
                  batcher.batches_dispatched()));
  std::printf("sharded (queries/s):");
  for (const auto& [shard_count, result] : sharded) {
    std::printf(" %zu shards %.1f |", shard_count, qps(result));
  }
  std::printf("\nrouter, multi-process (queries/s):");
  for (const auto& [shard_count, result] : routed) {
    std::printf(" %zu workers %.1f |", shard_count, qps(result));
  }
  std::printf("\ncold start %.2f ms | snapshot restore %.2f ms "
              "(%.2fx faster)\n",
              cold_start_seconds * 1e3, restore_seconds * 1e3,
              cold_start_seconds / restore_seconds);
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace warp

int main(int argc, char** argv) { return warp::Run(argc, argv); }
