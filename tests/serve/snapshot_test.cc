// warp-snap-v1 tests: a save→load round trip must reproduce every stored
// array bit-for-bit, a snapshot must restore at any shard count, and
// every malformed-file path must refuse with a precise error instead of
// guessing.

#include "warp/serve/snapshot.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"
#include "warp/serve/dataset_store.h"

namespace warp {
namespace serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Reads a whole file; empty on failure (the tests only patch files they
// just wrote).
std::string Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string bytes;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, n);
  }
  std::fclose(f);
  return bytes;
}

void Spit(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// A registered, sharded dataset to snapshot: 3 shards exercises the
// locate-based global-order walk in SaveSnapshot.
std::shared_ptr<const StoredDataset> MakeStored(size_t shards = 3) {
  DatasetStore store(shards);
  return store.Register("trips", gen::RandomWalkDataset(17, 24, 99), {2, 5});
}

TEST(SnapshotTest, RoundTripReproducesEveryArrayBitwise) {
  const auto stored = MakeStored();
  const std::string path = TempPath("roundtrip.wsnap");
  std::string error;
  SnapshotMeta saved;
  ASSERT_TRUE(SaveSnapshot(*stored, path, &error, &saved)) << error;
  EXPECT_EQ(saved.dataset, "trips");
  EXPECT_EQ(saved.epoch, stored->epoch);
  EXPECT_EQ(saved.series, stored->size());
  EXPECT_EQ(saved.uniform_length, stored->uniform_length);
  EXPECT_EQ(saved.bands, stored->bands);

  DatasetIndex loaded;
  SnapshotMeta meta;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &meta, &error)) << error;
  EXPECT_EQ(meta.dataset, saved.dataset);
  EXPECT_EQ(meta.checksum, saved.checksum);
  EXPECT_EQ(meta.payload_bytes, saved.payload_bytes);

  ASSERT_EQ(loaded.data.size(), stored->size());
  EXPECT_EQ(loaded.uniform_length, stored->uniform_length);
  EXPECT_EQ(loaded.bands, stored->bands);
  ASSERT_EQ(loaded.head.size(), stored->size());
  ASSERT_EQ(loaded.tail.size(), stored->size());
  ASSERT_EQ(loaded.envelopes.size(), stored->bands.size());
  for (size_t i = 0; i < stored->size(); ++i) {
    const TimeSeries& original = stored->SeriesAt(i);
    EXPECT_EQ(loaded.data[i].values(), original.values()) << "series " << i;
    EXPECT_EQ(loaded.data[i].label(), original.label());
    EXPECT_EQ(loaded.data[i].name(), original.name());
    const SeriesRef ref = stored->locate[i];
    EXPECT_EQ(loaded.head[i], stored->shards[ref.shard].head[ref.local]);
    EXPECT_EQ(loaded.tail[i], stored->shards[ref.shard].tail[ref.local]);
    for (size_t slot = 0; slot < stored->bands.size(); ++slot) {
      const Envelope& original_env =
          stored->shards[ref.shard].envelopes[slot][ref.local];
      EXPECT_EQ(loaded.envelopes[slot][i].upper, original_env.upper);
      EXPECT_EQ(loaded.envelopes[slot][i].lower, original_env.lower);
    }
  }
  std::remove(path.c_str());
}

// One file, any shard count: registering the loaded index into stores of
// different widths yields the same logical dataset.
TEST(SnapshotTest, LoadedIndexRegistersAtAnyShardCount) {
  const auto stored = MakeStored(2);
  const std::string path = TempPath("reshard.wsnap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*stored, path, &error)) << error;

  for (const size_t shards : {size_t{1}, size_t{4}, size_t{7}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    DatasetIndex index;
    ASSERT_TRUE(LoadSnapshot(path, &index, nullptr, &error)) << error;
    DatasetStore store(shards);
    const auto restored = store.RegisterIndex("trips", std::move(index));
    ASSERT_EQ(restored->size(), stored->size());
    EXPECT_EQ(restored->shard_count(), shards);
    EXPECT_EQ(restored->bands, stored->bands);
    for (size_t i = 0; i < stored->size(); ++i) {
      EXPECT_EQ(restored->SeriesAt(i).values(), stored->SeriesAt(i).values());
      EXPECT_EQ(restored->SeriesAt(i).label(), stored->SeriesAt(i).label());
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileRefuses) {
  DatasetIndex index;
  std::string error;
  EXPECT_FALSE(
      LoadSnapshot(TempPath("does_not_exist.wsnap"), &index, nullptr, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(SnapshotTest, TruncatedHeaderRefuses) {
  const std::string path = TempPath("trunc_header.wsnap");
  Spit(path, "warpsn");  // Shorter than the fixed header.
  DatasetIndex index;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &index, nullptr, &error));
  EXPECT_NE(error.find("truncated snapshot header"), std::string::npos)
      << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, BadMagicRefuses) {
  const std::string path = TempPath("bad_magic.wsnap");
  Spit(path, std::string("notasnap") + std::string(32, '\0'));
  DatasetIndex index;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &index, nullptr, &error));
  EXPECT_NE(error.find("bad snapshot magic"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, FutureVersionRefuses) {
  const auto stored = MakeStored();
  const std::string path = TempPath("future_version.wsnap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*stored, path, &error)) << error;
  std::string bytes = Slurp(path);
  ASSERT_GE(bytes.size(), 12u);
  bytes[8] = 9;  // Version field (u32 LE) right after the magic.
  Spit(path, bytes);
  DatasetIndex index;
  EXPECT_FALSE(LoadSnapshot(path, &index, nullptr, &error));
  EXPECT_NE(error.find("unsupported snapshot version 9"), std::string::npos)
      << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, CorruptPayloadRefusesOnChecksum) {
  const auto stored = MakeStored();
  const std::string path = TempPath("corrupt.wsnap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*stored, path, &error)) << error;
  std::string bytes = Slurp(path);
  ASSERT_GT(bytes.size(), 200u);
  bytes[100] = static_cast<char>(bytes[100] ^ 0x40);  // Flip a payload bit.
  Spit(path, bytes);
  DatasetIndex index;
  EXPECT_FALSE(LoadSnapshot(path, &index, nullptr, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedPayloadRefuses) {
  const auto stored = MakeStored();
  const std::string path = TempPath("trunc_payload.wsnap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(*stored, path, &error)) << error;
  const std::string bytes = Slurp(path);
  Spit(path, bytes.substr(0, 24 + (bytes.size() - 32) / 2));
  DatasetIndex index;
  EXPECT_FALSE(LoadSnapshot(path, &index, nullptr, &error));
  EXPECT_NE(error.find("truncated snapshot"), std::string::npos) << error;
  std::remove(path.c_str());
}

// A structurally valid, checksummed file claiming zero series must still
// be refused: an empty dataset is never servable.
TEST(SnapshotTest, EmptySnapshotRefuses) {
  std::string payload;
  const auto put_u64 = [&payload](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put_u64(1);  // name length
  payload.push_back('x');
  put_u64(1);  // epoch
  put_u64(0);  // uniform_length
  put_u64(0);  // series_count == 0
  put_u64(0);  // band count
  uint64_t checksum = 1469598103934665603ull;
  for (const char c : payload) {
    checksum ^= static_cast<unsigned char>(c);
    checksum *= 1099511628211ull;
  }
  std::string bytes = "warpsnap";
  const auto put_u32 = [&bytes](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put_u32(1);  // version
  put_u32(0);  // flags
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<char>((payload.size() >> (8 * i)) & 0xff));
  }
  bytes += payload;
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<char>((checksum >> (8 * i)) & 0xff));
  }
  const std::string path = TempPath("empty.wsnap");
  Spit(path, bytes);
  DatasetIndex index;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &index, nullptr, &error));
  EXPECT_NE(error.find("no series"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, ListSnapshotFilesFiltersAndSorts) {
  const std::string dir = ::testing::TempDir() + "/wsnap_list_test";
  std::remove((dir + "/b.wsnap").c_str());
  std::remove((dir + "/a.wsnap").c_str());
  std::remove((dir + "/ignore.txt").c_str());
  std::filesystem::create_directories(dir);
  Spit(dir + "/b.wsnap", "x");
  Spit(dir + "/a.wsnap", "x");
  Spit(dir + "/ignore.txt", "x");
  std::vector<std::string> paths;
  std::string error;
  ASSERT_TRUE(ListSnapshotFiles(dir, &paths, &error)) << error;
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], dir + "/a.wsnap");
  EXPECT_EQ(paths[1], dir + "/b.wsnap");

  EXPECT_FALSE(
      ListSnapshotFiles(dir + "/missing_subdir", &paths, &error));
  EXPECT_NE(error.find("cannot read snapshot directory"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace warp
