// Query execution against the dataset store.
//
// Resolves a typed ServeRequest (warp/serve/request.h) through the
// measure registry and answers it from the store's precomputed LB index:
// for cDTW the per-candidate cascade is
//
//   LB_Kim (head/tail cache) -> LB_Keogh(candidate envelope, query)
//   (precomputed) -> LB_Keogh(query envelope, candidate) (built once per
//   request) -> early-abandoning cDTW
//
// exactly the UCR-suite ordering, with each rung pruned against the
// current best-so-far. Other registered measures scan brute-force through
// their registry closure. Scans run on the engine's ThreadPool in
// fixed-size chunks; per-chunk winners merge on the calling thread by the
// total order (distance, index), so every answer is bitwise-identical at
// any thread count — pruning thresholds only decide how much work is
// skipped, never which candidate wins.
//
// Deadlines: a request with deadline_ms > 0 carries a wall-clock budget.
// When it expires mid-scan the remaining candidates are skipped and the
// response is flagged `partial` with `scanned`/`total` counts — a
// degraded-but-honest answer instead of a blocked worker. Partial
// responses never enter the result cache.

#ifndef WARP_SERVE_QUERY_ENGINE_H_
#define WARP_SERVE_QUERY_ENGINE_H_

#include <memory>
#include <vector>

#include "warp/common/parallel.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/request.h"
#include "warp/serve/result_cache.h"
#include "warp/serve/slowlog.h"

namespace warp {
namespace serve {

class QueryEngine {
 public:
  // `store` must outlive the engine; `cache` may be nullptr (no caching);
  // `slowlog` may be nullptr (computed queries are not logged).
  // threads: 1 = serial on the calling thread, 0 = DefaultThreadCount(),
  // N = N pool workers.
  QueryEngine(const DatasetStore* store, ResultCache* cache,
              size_t threads = 1, SlowQueryLog* slowlog = nullptr);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  size_t threads() const;

  // Answers one request (cache probe -> execute -> cache insert). Always
  // returns a response with the request's id; failures set ok=false and
  // `error`. Must be called from one orchestrating thread at a time (the
  // batcher serializes callers).
  ServeResponse Run(const ServeRequest& request);

  // Answers a batch. Requests are grouped by dataset so each group
  // resolves its snapshot once; groups with more than one uncached
  // request fan out request-per-chunk over the pool (each request scans
  // serially), single requests fan out candidate-chunks. Either path
  // yields bitwise-identical responses to Run() on each request alone.
  void RunBatch(const std::vector<ServeRequest>& requests,
                std::vector<ServeResponse>* responses);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_QUERY_ENGINE_H_
